//! Trace-context propagation and stage-attributed timing.
//!
//! A cluster request crosses three processes (client → coordinator →
//! shard), and attributing its latency requires two pieces of shared
//! state: a **trace id** that every event along the path carries, and a
//! **stage breakdown** that splits the wall-clock into named, contiguous
//! segments. This module provides both with nothing but `std`:
//!
//! - [`TraceContext`] — a 64-bit trace id plus a span id, minted from a
//!   splitmix64 hash of the clock and a process-wide counter (no RNG
//!   dependency), rendered as 16-char lowercase hex. The coordinator
//!   mints one per request and forwards it in the
//!   [`TRACE_HEADER`]/[`SPAN_HEADER`] request headers; shards inherit it.
//! - [`StageTimer`] — marks the end of contiguous stages so the named
//!   durations sum to the measured wall-clock *by construction*.
//! - [`encode_stage_times`]/[`decode_stage_times`] — the compact
//!   `name=us,name=us` codec carried in the [`STAGE_TIMES_HEADER`]
//!   response header, which the coordinator stitches into its own
//!   breakdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Request header carrying the trace id (16-char lowercase hex).
pub const TRACE_HEADER: &str = "X-Skyline-Trace";

/// Request header carrying the parent span id.
pub const SPAN_HEADER: &str = "X-Skyline-Span";

/// Response header carrying the encoded per-stage timings.
pub const STAGE_TIMES_HEADER: &str = "X-Skyline-Stage-Times";

/// splitmix64: a tiny, well-mixed 64-bit permutation. Good enough to
/// turn (clock, counter) into ids that never collide in practice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Mint a fresh 16-char lowercase-hex id. Uniqueness comes from mixing
/// the wall clock with a process-wide counter, so two ids minted in the
/// same nanosecond still differ.
pub fn mint_id() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!(
        "{:016x}",
        splitmix64(nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    )
}

/// True when `id` looks like an id we minted (or a forwarded one):
/// 1–32 lowercase-hex characters. Anything else is dropped rather than
/// propagated, so a hostile header can't inject into trace files.
pub fn is_valid_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 32
        && id
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Trace context for one request: the trace id shared by every hop and
/// this hop's span id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every process the request touches.
    pub trace_id: String,
    /// Span id of this hop (the coordinator's span for the request it
    /// fans out, or a shard's span for its local handling).
    pub span_id: String,
}

impl TraceContext {
    /// Mint a root context (new trace id, new span id). The coordinator
    /// does this once per incoming request.
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: mint_id(),
            span_id: mint_id(),
        }
    }

    /// Build a child context under an inherited trace id (a shard
    /// receiving [`TRACE_HEADER`]). Returns `None` when the id fails
    /// [`is_valid_id`].
    pub fn child_of(trace_id: &str) -> Option<TraceContext> {
        if is_valid_id(trace_id) {
            Some(TraceContext {
                trace_id: trace_id.to_string(),
                span_id: mint_id(),
            })
        } else {
            None
        }
    }
}

/// Measures contiguous named stages of one request.
///
/// Each [`StageTimer::mark`] closes the segment since the previous mark
/// (or since construction) under the given name, so the recorded stage
/// durations sum to the wall-clock between start and the last mark by
/// construction — the property the stitched breakdown is validated
/// against. Overlapping per-leg detail (e.g. `shard0.compute`) goes in
/// via [`StageTimer::detail`], which is excluded from that sum.
#[derive(Debug)]
pub struct StageTimer {
    start: Instant,
    last: Instant,
    stages: Vec<(String, u64)>,
    details: Vec<(String, u64)>,
}

impl StageTimer {
    /// Start timing now.
    pub fn start() -> StageTimer {
        let now = Instant::now();
        StageTimer {
            start: now,
            last: now,
            stages: Vec::new(),
            details: Vec::new(),
        }
    }

    /// Close the current segment under `name` and start the next one.
    /// Returns the segment's duration in microseconds.
    pub fn mark(&mut self, name: &str) -> u64 {
        let now = Instant::now();
        let us = now.duration_since(self.last).as_micros() as u64;
        self.last = now;
        self.stages.push((name.to_string(), us));
        us
    }

    /// Record an out-of-band measurement (not part of the contiguous
    /// sum), e.g. a per-shard breakdown entry.
    pub fn detail(&mut self, name: &str, us: u64) {
        self.details.push((name.to_string(), us));
    }

    /// Close the current segment split into named `parts` plus a `rest`
    /// stage absorbing whatever the parts do not claim. Parts are capped
    /// at the segment length, so the stages still sum to wall-clock.
    ///
    /// Used where one wall-clock span covers phases measured elsewhere:
    /// the coordinator's scatter is a single segment, but the legs'
    /// connect/send timings split it into `connect`, `send`, and a
    /// residual `shard_wait`.
    pub fn mark_partitioned(&mut self, parts: &[(&str, u64)], rest: &str) {
        let now = Instant::now();
        let segment = now.duration_since(self.last).as_micros() as u64;
        self.last = now;
        let mut used = 0u64;
        for (name, us) in parts {
            let us = (*us).min(segment - used);
            self.stages.push((name.to_string(), us));
            used += us;
        }
        self.stages.push((rest.to_string(), segment - used));
    }

    /// The contiguous stages marked so far, in order.
    pub fn stages(&self) -> &[(String, u64)] {
        &self.stages
    }

    /// Detail entries recorded so far, in order.
    pub fn details(&self) -> &[(String, u64)] {
        &self.details
    }

    /// Microseconds since the timer started.
    pub fn total_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Contiguous stages followed by detail entries, for encoding.
    pub fn all_entries(&self) -> Vec<(String, u64)> {
        let mut out = self.stages.clone();
        out.extend(self.details.iter().cloned());
        out
    }
}

/// Encode stage timings as the compact `name=us,name=us` wire form
/// carried in [`STAGE_TIMES_HEADER`]. Names must not contain `=` or
/// `,` (ours never do; offending entries are skipped defensively).
pub fn encode_stage_times(stages: &[(String, u64)]) -> String {
    let mut out = String::new();
    for (name, us) in stages {
        if name.is_empty() || name.contains('=') || name.contains(',') {
            continue;
        }
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(name);
        out.push('=');
        out.push_str(&us.to_string());
    }
    out
}

/// Decode the `name=us,name=us` wire form, skipping malformed entries.
pub fn decode_stage_times(s: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((name, us)) = part.split_once('=') {
            if let Ok(us) = us.trim().parse::<u64>() {
                if !name.is_empty() {
                    out.push((name.to_string(), us));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_hex() {
        let a = mint_id();
        let b = mint_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(is_valid_id(id), "{id}");
        }
    }

    #[test]
    fn id_validation_rejects_junk() {
        assert!(is_valid_id("00ff00ff"));
        assert!(!is_valid_id(""));
        assert!(!is_valid_id("XYZ"));
        assert!(!is_valid_id("deadbeef\n"));
        assert!(!is_valid_id(&"a".repeat(33)));
    }

    #[test]
    fn child_context_inherits_the_trace_id() {
        let root = TraceContext::mint();
        let child = TraceContext::child_of(&root.trace_id).expect("valid id");
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert!(TraceContext::child_of("not hex!").is_none());
    }

    #[test]
    fn stage_timer_segments_sum_to_the_span_of_marks() {
        let mut t = StageTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.mark("parse");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.mark("compute");
        t.detail("shard0.compute", 999);
        let sum: u64 = t.stages().iter().map(|(_, us)| us).sum();
        assert!(sum >= 4_000, "sum was {sum}");
        assert!(sum <= t.total_us());
        assert_eq!(t.stages().len(), 2);
        assert_eq!(t.details(), &[("shard0.compute".to_string(), 999)]);
        assert_eq!(t.all_entries().len(), 3);
    }

    #[test]
    fn partitioned_marks_keep_the_sum_equal_to_wall_clock() {
        let mut t = StageTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(4));
        t.mark_partitioned(&[("connect", 1), ("send", 1)], "shard_wait");
        let names: Vec<&str> = t.stages().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["connect", "send", "shard_wait"]);
        let sum: u64 = t.stages().iter().map(|(_, us)| us).sum();
        assert!(sum >= 4_000, "sum was {sum}");
        assert!(sum <= t.total_us());

        // Parts claiming more than the segment are capped, never negative.
        let mut t = StageTimer::start();
        t.mark_partitioned(&[("connect", u64::MAX)], "rest");
        let sum: u64 = t.stages().iter().map(|(_, us)| us).sum();
        assert!(sum <= t.total_us());
    }

    #[test]
    fn stage_times_round_trip_through_the_wire_form() {
        let stages = vec![
            ("parse".to_string(), 12u64),
            ("compute".to_string(), 34_000),
            ("respond".to_string(), 0),
        ];
        let wire = encode_stage_times(&stages);
        assert_eq!(wire, "parse=12,compute=34000,respond=0");
        assert_eq!(decode_stage_times(&wire), stages);
    }

    #[test]
    fn decoder_skips_malformed_entries() {
        assert_eq!(
            decode_stage_times("a=1,,broken,=5,b=x,c=3"),
            vec![("a".to_string(), 1), ("c".to_string(), 3)]
        );
        assert!(decode_stage_times("").is_empty());
        // Encoder drops names that would corrupt the wire form.
        let bad = vec![("a=b".to_string(), 1u64), ("ok".to_string(), 2)];
        assert_eq!(encode_stage_times(&bad), "ok=2");
    }
}

//! The `Recorder` trait and its three implementations.
//!
//! Algorithms are instrumented against `&mut dyn Recorder`. The contract
//! that keeps the disabled path free:
//!
//! - recorder calls happen at *coarse* boundaries only (per phase, per
//!   Merge iteration, per run) — never inside the dominance-test loop;
//! - fine-grained distributions accumulate in plain [`Histogram`]s inside
//!   the caller's metrics struct (one array-index bump per sample);
//! - anything that costs an allocation to build (e.g. cloning a bucket
//!   vector for [`Event::MergeIteration`]) must be guarded by
//!   [`Recorder::enabled`].

use std::io::{BufWriter, Write};
use std::time::Instant;

use crate::event::Event;
use crate::histogram::Histogram;
use crate::json::ObjectWriter;

/// Sink for spans and events. See the module docs for the cost contract.
pub trait Recorder {
    /// True when events will actually be kept. Callers use this to skip
    /// building event payloads.
    fn enabled(&self) -> bool;

    /// Open a named span. Spans nest: every `span_start` must be closed
    /// by a matching [`Recorder::span_end`] in LIFO order.
    fn span_start(&mut self, name: &'static str);

    /// Close the innermost open span; `name` must match its opener.
    fn span_end(&mut self, name: &'static str);

    /// Record one typed event.
    fn event(&mut self, event: Event);
}

/// The default recorder: discards everything, reports disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn span_start(&mut self, _name: &'static str) {}

    fn span_end(&mut self, _name: &'static str) {}

    fn event(&mut self, _event: Event) {}
}

/// One entry captured by a [`MemoryRecorder`].
// Records are created at phase boundaries, never in per-point loops, so
// the size skew from `Event`'s inline histograms costs nothing real.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A span opened. `depth` is the nesting level (0 = outermost).
    SpanStart {
        /// Span name.
        name: &'static str,
        /// Nesting depth at open time.
        depth: usize,
    },
    /// A span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Nesting depth the span had while open.
        depth: usize,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A typed event.
    Event(Event),
}

/// In-memory recorder for tests and programmatic inspection.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    records: Vec<Record>,
    open: Vec<(&'static str, Instant)>,
}

impl MemoryRecorder {
    /// New, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, in order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The typed events only, skipping span records.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(|r| match r {
            Record::Event(e) => Some(e),
            _ => None,
        })
    }

    /// Names of spans that were opened but never closed (empty when the
    /// instrumented code balanced its spans).
    pub fn open_spans(&self) -> Vec<&'static str> {
        self.open.iter().map(|(n, _)| *n).collect()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&mut self, name: &'static str) {
        self.records.push(Record::SpanStart {
            name,
            depth: self.open.len(),
        });
        self.open.push((name, Instant::now()));
    }

    fn span_end(&mut self, name: &'static str) {
        let (opened, started) = self
            .open
            .pop()
            .unwrap_or_else(|| panic!("span_end(\"{name}\") with no open span"));
        assert_eq!(
            opened, name,
            "span_end(\"{name}\") does not match innermost open span \"{opened}\""
        );
        self.records.push(Record::SpanEnd {
            name,
            depth: self.open.len(),
            dur_us: started.elapsed().as_micros() as u64,
        });
    }

    fn event(&mut self, event: Event) {
        self.records.push(Record::Event(event));
    }
}

/// Recorder writing one JSON object per line to any `io::Write` sink.
///
/// Record shapes:
///
/// ```json
/// {"type":"span_start","ts_us":12,"name":"merge","depth":1}
/// {"type":"span_end","ts_us":340,"name":"merge","depth":1,"dur_us":328}
/// {"type":"run_start","ts_us":2,...}          // Event::to_json
/// ```
///
/// Timestamps are microseconds since the recorder was created. I/O
/// errors are counted, not propagated — tracing must never fail the
/// computation it observes.
pub struct JsonlRecorder<W: Write> {
    out: Option<BufWriter<W>>, // Option so into_inner() can move past Drop
    epoch: Instant,
    open: Vec<(&'static str, Instant)>,
    io_errors: u64,
}

impl JsonlRecorder<std::fs::File> {
    /// Create (truncate) `path` and trace into it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Trace into `sink`.
    pub fn new(sink: W) -> Self {
        JsonlRecorder {
            out: Some(BufWriter::new(sink)),
            epoch: Instant::now(),
            open: Vec::new(),
            io_errors: 0,
        }
    }

    fn ts_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn write_line(&mut self, line: &str) {
        let out = self.out.as_mut().expect("sink present until into_inner");
        if writeln!(out, "{line}").is_err() {
            self.io_errors += 1;
        }
    }

    /// Number of write failures swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flush buffered records to the sink. Servers call this after each
    /// request-level event so a live trace file can be tailed; failures
    /// are counted like write failures, not propagated.
    pub fn flush(&mut self) {
        let out = self.out.as_mut().expect("sink present until into_inner");
        if out.flush().is_err() {
            self.io_errors += 1;
        }
    }

    /// Flush buffered records and return the underlying sink.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        let out = self.out.take().expect("sink present until into_inner");
        out.into_inner().map_err(|e| e.into_error())
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&mut self, name: &'static str) {
        let mut w = ObjectWriter::new();
        w.str_field("type", "span_start")
            .u64_field("ts_us", self.ts_us())
            .str_field("name", name)
            .u64_field("depth", self.open.len() as u64);
        let line = w.finish();
        self.write_line(&line);
        self.open.push((name, Instant::now()));
    }

    fn span_end(&mut self, name: &'static str) {
        let (opened, started) = self
            .open
            .pop()
            .unwrap_or_else(|| panic!("span_end(\"{name}\") with no open span"));
        assert_eq!(
            opened, name,
            "span_end(\"{name}\") does not match innermost open span \"{opened}\""
        );
        let mut w = ObjectWriter::new();
        w.str_field("type", "span_end")
            .u64_field("ts_us", self.ts_us())
            .str_field("name", name)
            .u64_field("depth", self.open.len() as u64)
            .u64_field("dur_us", started.elapsed().as_micros() as u64);
        let line = w.finish();
        self.write_line(&line);
    }

    fn event(&mut self, event: Event) {
        let line = event.to_json(self.ts_us());
        self.write_line(&line);
    }
}

impl<W: Write> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

/// Convenience: snapshot a histogram pair into a [`Event::TrieStats`].
pub fn trie_stats_event(
    nodes: u64,
    entries: u64,
    depth: &Histogram,
    candidates: &Histogram,
) -> Event {
    Event::TrieStats {
        nodes,
        entries,
        depth: *depth,
        candidates: *candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.span_start("a");
        r.event(Event::RunStart {
            algorithm: "x".into(),
            points: 1,
            dims: 1,
        });
        r.span_end("a");
    }

    #[test]
    fn memory_recorder_tracks_nesting_depth_and_order() {
        let mut r = MemoryRecorder::new();
        r.span_start("run");
        r.span_start("sort");
        r.span_end("sort");
        r.span_start("scan");
        r.event(Event::RunStart {
            algorithm: "x".into(),
            points: 2,
            dims: 2,
        });
        r.span_end("scan");
        r.span_end("run");
        assert!(r.open_spans().is_empty());

        let depths: Vec<(&str, usize, bool)> = r
            .records()
            .iter()
            .filter_map(|rec| match rec {
                Record::SpanStart { name, depth } => Some((*name, *depth, true)),
                Record::SpanEnd { name, depth, .. } => Some((*name, *depth, false)),
                Record::Event(_) => None,
            })
            .collect();
        assert_eq!(
            depths,
            vec![
                ("run", 0, true),
                ("sort", 1, true),
                ("sort", 1, false),
                ("scan", 1, true),
                ("scan", 1, false),
                ("run", 0, false),
            ]
        );
        // The event landed between scan's open and close.
        let scan_open = r
            .records()
            .iter()
            .position(|rec| matches!(rec, Record::SpanStart { name: "scan", .. }))
            .unwrap();
        let scan_close = r
            .records()
            .iter()
            .position(|rec| matches!(rec, Record::SpanEnd { name: "scan", .. }))
            .unwrap();
        let ev = r
            .records()
            .iter()
            .position(|rec| matches!(rec, Record::Event(_)))
            .unwrap();
        assert!(scan_open < ev && ev < scan_close);
    }

    #[test]
    #[should_panic(expected = "does not match innermost")]
    fn mismatched_span_end_panics() {
        let mut r = MemoryRecorder::new();
        r.span_start("a");
        r.span_start("b");
        r.span_end("a");
    }

    #[test]
    fn jsonl_recorder_emits_parseable_lines() {
        let mut r = JsonlRecorder::new(Vec::new());
        assert!(r.enabled());
        r.span_start("run");
        r.event(Event::RunStart {
            algorithm: "BNL".into(),
            points: 10,
            dims: 3,
        });
        r.span_end("run");
        assert_eq!(r.io_errors(), 0);
        let bytes = r.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = Value::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("span_start"));
        assert_eq!(first.get("name").unwrap().as_str(), Some("run"));
        let last = Value::parse(lines[2]).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("span_end"));
        assert!(last.get("dur_us").unwrap().as_u64().is_some());
        // Timestamps are monotone.
        let ts: Vec<u64> = lines
            .iter()
            .map(|l| {
                Value::parse(l)
                    .unwrap()
                    .get("ts_us")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}

//! Fixed-bucket power-of-two histograms.
//!
//! Distributions the algorithms care about (trie query depth, candidates
//! returned per container query, subspace sizes per Merge iteration) span
//! a few orders of magnitude but never need fine resolution — a log2
//! bucketing with a fixed bucket count captures the shape with a single
//! array-index increment per sample and no allocation. Keeping the state
//! a plain array of `u64` lets `Histogram` live inside `Metrics` without
//! disturbing its `Default`/`PartialEq`/`Eq` derives.

/// Number of log2 buckets. Bucket `i` (for `i >= 1`) holds values `v`
/// with `2^(i-1) <= v < 2^i`; bucket 0 holds the value `0`. The last
/// bucket absorbs everything at or above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 16;

/// A log2-bucketed histogram over `u64` samples with exact count / sum /
/// min / max side statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket that `value` falls into.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative, so per-run histograms can be absorbed in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Rebuild a histogram from serialized parts (used by the trace
    /// reader). `min`/`max` of an empty histogram are normalised.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, min: u64, max: u64) -> Self {
        if count == 0 {
            Histogram::default()
        } else {
            Histogram {
                buckets,
                count,
                sum,
                min,
                max,
            }
        }
    }

    /// Human-readable range label of bucket `i`, e.g. `"0"`, `"1"`,
    /// `"2-3"`, `"4-7"`, or `">=16384"` for the overflow bucket.
    pub fn bucket_label(i: usize) -> String {
        assert!(i < BUCKETS);
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            _ if i == BUCKETS - 1 => format!(">={}", 1u64 << (BUCKETS - 2)),
            _ => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`.
    ///
    /// The estimate is the upper bound of the bucket holding the
    /// nearest-rank sample, clamped into `[min, max]` — so a
    /// single-sample histogram reports that sample exactly at every
    /// quantile, and the overflow bucket reports the observed max
    /// rather than a fictitious bound. Empty histograms report 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let upper = if i == BUCKETS - 1 { self.max } else { upper };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `"1:3 2-3:17 4-7:2"`. Empty histograms render as `"-"`.
    pub fn render_compact(&self) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        let parts: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{}:{}", Self::bucket_label(i), c))
            .collect();
        parts.join(" ")
    }
}

/// Lock-free histogram for hot paths shared across threads.
///
/// Same bucket shape as [`Histogram`], but every field is an atomic so
/// request threads record samples with a handful of `Relaxed` RMW ops
/// and never serialize on a lock. Cross-field consistency is only
/// approximate while writers are active; [`AtomicHistogram::snapshot`]
/// normalises the empty case exactly as [`Histogram::from_parts`] does.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [core::sync::atomic::AtomicU64; BUCKETS],
    count: core::sync::atomic::AtomicU64,
    sum: core::sync::atomic::AtomicU64,
    min: core::sync::atomic::AtomicU64,
    max: core::sync::atomic::AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        use core::sync::atomic::AtomicU64;
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample. Safe to call concurrently from many threads.
    #[inline]
    pub fn record(&self, value: u64) {
        use core::sync::atomic::Ordering::Relaxed;
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(core::sync::atomic::Ordering::Relaxed)
    }

    /// Materialise the current state as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        use core::sync::atomic::Ordering::Relaxed;
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Relaxed);
        }
        Histogram::from_parts(
            buckets,
            self.count.load(Relaxed),
            self.sum.load(Relaxed),
            self.min.load(Relaxed),
            self.max.load(Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of((1 << 14) - 1), 14);
        assert_eq!(bucket_of(1 << 14), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [3u64, 0, 9, 9, 1] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 22);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 4.4).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
        }
        for v in 0..20u64 {
            b.record(v * v);
        }
        c.record(u64::MAX);

        // (a + b) + c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // b + a == a + b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let before = h;
        h.merge(&Histogram::new());
        assert_eq!(h, before);

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn labels_and_compact_rendering() {
        assert_eq!(Histogram::bucket_label(0), "0");
        assert_eq!(Histogram::bucket_label(1), "1");
        assert_eq!(Histogram::bucket_label(2), "2-3");
        assert_eq!(Histogram::bucket_label(4), "8-15");
        assert_eq!(Histogram::bucket_label(BUCKETS - 1), ">=16384");

        let mut h = Histogram::new();
        assert_eq!(h.render_compact(), "-");
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.render_compact(), "1:1 2-3:2");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        h.record(37);
        assert_eq!(h.p50(), 37);
        assert_eq!(h.p99(), 37);
        assert_eq!(h.quantile(0.0), 37);
        assert_eq!(h.quantile(1.0), 37);
    }

    #[test]
    fn values_above_the_top_bucket_saturate() {
        let mut h = Histogram::new();
        h.record(1 << 20);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[BUCKETS - 1], 2);
        // The overflow bucket has no upper bound; quantiles there report
        // the observed max instead of inventing one.
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturating add
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket 2, upper bound 3
        }
        h.record(1000); // bucket 10, upper bound 1023
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 3);
        // max clamp keeps the tail estimate at the observed max.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_of_two_histograms_matches_combined_recording() {
        // The cluster stitcher merges per-shard stage histograms; the
        // merged quantiles must match recording every sample into one.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [5u64, 80, 80, 200] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 7, 4096] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.p50(), combined.p50());
        assert_eq!(a.p99(), combined.p99());
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let a = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 9, 9, 3000, 1 << 30] {
            a.record(v);
            h.record(v);
        }
        assert_eq!(a.snapshot(), h);
        assert_eq!(a.count(), 6);
        assert_eq!(AtomicHistogram::new().snapshot(), Histogram::default());
    }

    #[test]
    fn atomic_histogram_is_consistent_across_threads() {
        let a = AtomicHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..250u64 {
                        a.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = a.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3249);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 6, 6, 80] {
            h.record(v);
        }
        let r = Histogram::from_parts(*h.buckets(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(r, h);
        assert_eq!(
            Histogram::from_parts([0; BUCKETS], 0, 0, 0, 0),
            Histogram::default()
        );
    }
}

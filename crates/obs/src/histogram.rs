//! Fixed-bucket power-of-two histograms.
//!
//! Distributions the algorithms care about (trie query depth, candidates
//! returned per container query, subspace sizes per Merge iteration) span
//! a few orders of magnitude but never need fine resolution — a log2
//! bucketing with a fixed bucket count captures the shape with a single
//! array-index increment per sample and no allocation. Keeping the state
//! a plain array of `u64` lets `Histogram` live inside `Metrics` without
//! disturbing its `Default`/`PartialEq`/`Eq` derives.

/// Number of log2 buckets. Bucket `i` (for `i >= 1`) holds values `v`
/// with `2^(i-1) <= v < 2^i`; bucket 0 holds the value `0`. The last
/// bucket absorbs everything at or above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 16;

/// A log2-bucketed histogram over `u64` samples with exact count / sum /
/// min / max side statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Index of the bucket that `value` falls into.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Merging is commutative and
    /// associative, so per-run histograms can be absorbed in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Rebuild a histogram from serialized parts (used by the trace
    /// reader). `min`/`max` of an empty histogram are normalised.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, min: u64, max: u64) -> Self {
        if count == 0 {
            Histogram::default()
        } else {
            Histogram {
                buckets,
                count,
                sum,
                min,
                max,
            }
        }
    }

    /// Human-readable range label of bucket `i`, e.g. `"0"`, `"1"`,
    /// `"2-3"`, `"4-7"`, or `">=16384"` for the overflow bucket.
    pub fn bucket_label(i: usize) -> String {
        assert!(i < BUCKETS);
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            _ if i == BUCKETS - 1 => format!(">={}", 1u64 << (BUCKETS - 2)),
            _ => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `"1:3 2-3:17 4-7:2"`. Empty histograms render as `"-"`.
    pub fn render_compact(&self) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        let parts: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{}:{}", Self::bucket_label(i), c))
            .collect();
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of((1 << 14) - 1), 14);
        assert_eq!(bucket_of(1 << 14), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        for v in [3u64, 0, 9, 9, 1] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 22);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 4.4).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
        }
        for v in 0..20u64 {
            b.record(v * v);
        }
        c.record(u64::MAX);

        // (a + b) + c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // b + a == a + b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let before = h;
        h.merge(&Histogram::new());
        assert_eq!(h, before);

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn labels_and_compact_rendering() {
        assert_eq!(Histogram::bucket_label(0), "0");
        assert_eq!(Histogram::bucket_label(1), "1");
        assert_eq!(Histogram::bucket_label(2), "2-3");
        assert_eq!(Histogram::bucket_label(4), "8-15");
        assert_eq!(Histogram::bucket_label(BUCKETS - 1), ">=16384");

        let mut h = Histogram::new();
        assert_eq!(h.render_compact(), "-");
        h.record(1);
        h.record(2);
        h.record(3);
        assert_eq!(h.render_compact(), "1:1 2-3:2");
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 6, 6, 80] {
            h.record(v);
        }
        let r = Histogram::from_parts(*h.buckets(), h.count(), h.sum(), h.min(), h.max());
        assert_eq!(r, h);
        assert_eq!(
            Histogram::from_parts([0; BUCKETS], 0, 0, 0, 0),
            Histogram::default()
        );
    }
}

//! Ablation 4 (DESIGN.md): hash-map versus sorted-map trie nodes. The
//! paper notes hash maps give O(1) node access and sorted maps O(log d)
//! (Lemma 5.2 discussion).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_core::metrics::Metrics;
use skyline_core::subset_index::{SortedSubsetIndex, SubsetIndex};
use skyline_core::subspace::Subspace;
use skyline_data::rng::Rng64;

fn subspaces(dims: usize, count: usize, seed: u64) -> Vec<Subspace> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = Subspace::full(dims).bits();
    (0..count)
        .map(|_| Subspace::from_bits(rng.next_u64() & mask))
        .collect()
}

fn bench_trie_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_node");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dims = 16;
    let stored = subspaces(dims, 8192, 3);
    let queries = subspaces(dims, 512, 5);

    let mut hash = SubsetIndex::new(dims);
    let mut sorted = SortedSubsetIndex::new(dims);
    for (i, &s) in stored.iter().enumerate() {
        hash.put(i as u32, s);
        sorted.put(i as u32, s);
    }

    group.bench_function(BenchmarkId::new("put", "hash"), |bencher| {
        bencher.iter(|| {
            let mut index = SubsetIndex::new(dims);
            for (i, &s) in stored.iter().enumerate() {
                index.put(i as u32, s);
            }
            black_box(index.len())
        })
    });
    group.bench_function(BenchmarkId::new("put", "sorted"), |bencher| {
        bencher.iter(|| {
            let mut index = SortedSubsetIndex::new(dims);
            for (i, &s) in stored.iter().enumerate() {
                index.put(i as u32, s);
            }
            black_box(index.len())
        })
    });
    group.bench_function(BenchmarkId::new("query", "hash"), |bencher| {
        let mut out = Vec::new();
        let mut m = Metrics::new();
        bencher.iter(|| {
            let mut total = 0;
            for &q in &queries {
                out.clear();
                hash.query_into(q, &mut out, &mut m);
                total += out.len();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::new("query", "sorted"), |bencher| {
        let mut out = Vec::new();
        let mut m = Metrics::new();
        bencher.iter(|| {
            let mut total = 0;
            for &q in &queries {
                out.clear();
                sorted.query_into(q, &mut out, &mut m);
                total += out.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trie_node);
criterion_main!(benches);

//! Streaming-maintenance throughput: inserts into a maintained skyline,
//! with and without deletion churn, against batch recomputation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_algos::{boosted::SdiSubset, SkylineAlgorithm};
use skyline_core::metrics::Metrics;
use skyline_core::streaming::StreamingSkyline;
use skyline_data::{uniform_independent, Distribution, SyntheticSpec};

fn bench_insert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_insert");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for dist in [Distribution::Independent, Distribution::Correlated] {
        let data = SyntheticSpec {
            distribution: dist,
            cardinality: 10_000,
            dims: 6,
            seed: 8,
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(dist.tag()), &data, |b, data| {
            b.iter(|| {
                let mut sky = StreamingSkyline::new(data.dims()).unwrap();
                let mut m = Metrics::new();
                for (_, row) in data.iter() {
                    sky.insert(row, &mut m).unwrap();
                }
                black_box(sky.skyline_len())
            })
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_churn");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let data = uniform_independent(10_000, 6, 21);
    // Sliding window of 2,000 points over the stream.
    group.bench_function("sliding_window_2000", |b| {
        b.iter(|| {
            let mut sky = StreamingSkyline::new(data.dims()).unwrap();
            let mut m = Metrics::new();
            let mut ids = std::collections::VecDeque::new();
            for (_, row) in data.iter() {
                ids.push_back(sky.insert(row, &mut m).unwrap());
                if ids.len() > 2_000 {
                    let victim = ids.pop_front().unwrap();
                    sky.remove(victim, &mut m);
                }
            }
            black_box(sky.skyline_len())
        })
    });
    // Baseline: batch recomputation at the end of the same stream (what
    // the streaming structure amortises away).
    group.bench_function("batch_recompute_final", |b| {
        let algo = SdiSubset::default();
        b.iter(|| black_box(algo.compute(&data).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_insert_throughput, bench_churn);
criterion_main!(benches);

//! Throughput of the synthetic data generators, including the rejection
//! sampling cost of the anti-correlated distribution at high
//! dimensionality.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_data::{generate, Distribution, SyntheticSpec};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        for dims in [4usize, 8, 16, 24] {
            let spec = SyntheticSpec {
                distribution: dist,
                cardinality: 10_000,
                dims,
                seed: 9,
            };
            group.bench_with_input(
                BenchmarkId::new(dist.tag(), dims),
                &spec,
                |bencher, spec| bencher.iter(|| black_box(generate(spec))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);

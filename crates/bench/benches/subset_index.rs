//! Put/query cost of the subset index as a function of dimensionality and
//! stored cardinality — the paper's Lemma 5.2 (`O(d/2)` put) and
//! Lemma 5.3 (`O((d/2)²)` query) in practice.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_core::metrics::Metrics;
use skyline_core::subset_index::SubsetIndex;
use skyline_core::subspace::Subspace;
use skyline_data::rng::Rng64;

fn random_subspaces(dims: usize, count: usize, seed: u64) -> Vec<Subspace> {
    let mut rng = Rng64::seed_from_u64(seed);
    let mask = Subspace::full(dims).bits();
    (0..count)
        .map(|_| Subspace::from_bits(rng.next_u64() & mask))
        .collect()
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_index_put");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dims in [4usize, 8, 16, 24] {
        let subs = random_subspaces(dims, 4096, 11);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |bencher, _| {
            bencher.iter(|| {
                let mut index = SubsetIndex::new(dims);
                for (i, &s) in subs.iter().enumerate() {
                    index.put(i as u32, s);
                }
                black_box(index.len())
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_index_query");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dims in [4usize, 8, 16, 24] {
        let mut index = SubsetIndex::new(dims);
        for (i, &s) in random_subspaces(dims, 4096, 13).iter().enumerate() {
            index.put(i as u32, s);
        }
        let queries = random_subspaces(dims, 256, 17);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |bencher, _| {
            let mut out = Vec::new();
            let mut m = Metrics::new();
            bencher.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    out.clear();
                    index.query_into(q, &mut out, &mut m);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_query_vs_stored(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_index_query_vs_stored");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let dims = 8;
    for stored in [256usize, 1024, 4096, 16384] {
        let mut index = SubsetIndex::new(dims);
        for (i, &s) in random_subspaces(dims, stored, 19).iter().enumerate() {
            index.put(i as u32, s);
        }
        let queries = random_subspaces(dims, 64, 23);
        group.bench_with_input(
            BenchmarkId::from_parameter(stored),
            &stored,
            |bencher, _| {
                let mut out = Vec::new();
                let mut m = Metrics::new();
                bencher.iter(|| {
                    let mut total = 0usize;
                    for &q in &queries {
                        out.clear();
                        index.query_into(q, &mut out, &mut m);
                        total += out.len();
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_query, bench_query_vs_stored);
criterion_main!(benches);

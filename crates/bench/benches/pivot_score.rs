//! Ablation 3 (DESIGN.md): the pivot scoring function of the merge phase.
//! The paper uses Euclidean distance and remarks that "any measure can be
//! applied"; this bench compares Euclidean, sum and minC pivot selection
//! inside otherwise identical boosted runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_core::boost::{boosted_skyline, BoostConfig, SortStrategy};
use skyline_core::merge::{MergeConfig, PivotScore};
use skyline_core::metrics::Metrics;
use skyline_data::{anti_correlated, uniform_independent};

fn bench_pivot_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_score");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let workloads = [
        ("UI-8D", uniform_independent(20_000, 8, 55)),
        ("AC-8D", anti_correlated(20_000, 8, 55)),
    ];
    for (label, data) in &workloads {
        for (name, score) in [
            ("euclidean", PivotScore::Euclidean),
            ("sum", PivotScore::Sum),
            ("minc", PivotScore::MinCoordinate),
        ] {
            let mut merge = MergeConfig::recommended(data.dims());
            merge.score = score;
            let config = BoostConfig {
                merge,
                sort: SortStrategy::Sum,
                use_stop_point: false,
            };
            group.bench_with_input(BenchmarkId::new(name, label), data, |bencher, data| {
                bencher.iter(|| {
                    let mut m = Metrics::new();
                    black_box(boosted_skyline(data, &config, &mut m))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pivot_score);
criterion_main!(benches);

//! Macro benchmark: the full evaluation suite on one moderate workload
//! per data distribution — the Criterion companion of Tables 2–13.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_algos::evaluation_suite;
use skyline_data::{anti_correlated, correlated, uniform_independent};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let workloads = [
        ("AC-8D-10K", anti_correlated(10_000, 8, 1)),
        ("CO-8D-10K", correlated(10_000, 8, 1)),
        ("UI-8D-10K", uniform_independent(10_000, 8, 1)),
    ];
    for (label, data) in &workloads {
        for algo in evaluation_suite(None) {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), label),
                data,
                |bencher, data| bencher.iter(|| black_box(algo.compute(data))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);

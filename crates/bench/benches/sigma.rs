//! Ablation 2 (DESIGN.md): wall-clock sensitivity to the stability
//! threshold σ — the Criterion companion of Figures 4/5. The paper's
//! recommendation is σ ≈ d/3.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_algos::boosted::SdiSubset;
use skyline_algos::SkylineAlgorithm;
use skyline_data::uniform_independent;

fn bench_sigma(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let data = uniform_independent(20_000, 8, 41);
    for sigma in [2usize, 3, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(sigma), &sigma, |bencher, &s| {
            let algo = SdiSubset::new(Some(s));
            bencher.iter(|| black_box(algo.compute(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sigma);
criterion_main!(benches);

//! Ablation 1 (DESIGN.md): the paper's central claim — swapping the plain
//! skyline list for the subset-index container inside the same boosted
//! scan. Everything else (merge phase, sort order) is identical, so the
//! delta is the container.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_core::boost::{boosted_skyline_with, BoostConfig, SortStrategy};
use skyline_core::container::{ListContainer, SubsetContainer};
use skyline_core::merge::MergeConfig;
use skyline_core::metrics::Metrics;
use skyline_data::{anti_correlated, uniform_independent};

fn bench_container(c: &mut Criterion) {
    let mut group = c.benchmark_group("container");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let workloads = [
        ("UI-8D", uniform_independent(20_000, 8, 3)),
        ("AC-8D", anti_correlated(20_000, 8, 3)),
        ("UI-12D", uniform_independent(10_000, 12, 3)),
    ];
    for (label, data) in &workloads {
        let config = BoostConfig {
            merge: MergeConfig::recommended(data.dims()),
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        group.bench_with_input(BenchmarkId::new("list", label), data, |bencher, data| {
            bencher.iter(|| {
                let mut m = Metrics::new();
                let mut container = ListContainer::new();
                black_box(boosted_skyline_with(data, &config, &mut container, &mut m))
            })
        });
        group.bench_with_input(BenchmarkId::new("subset", label), data, |bencher, data| {
            bencher.iter(|| {
                let mut m = Metrics::new();
                let mut container: SubsetContainer = SubsetContainer::new(data.dims());
                black_box(boosted_skyline_with(data, &config, &mut container, &mut m))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_container);
criterion_main!(benches);

//! Micro-benchmarks of the dominance primitives — the innermost loop of
//! every skyline algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skyline_core::dominance::{dominance, dominates, dominating_subspace};
use skyline_data::uniform_independent;

fn bench_dominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dims in [2usize, 4, 8, 16, 24, 64] {
        let data = uniform_independent(2, dims, 7);
        let a = data.point(0).to_vec();
        let b = data.point(1).to_vec();
        group.bench_with_input(BenchmarkId::new("three_way", dims), &dims, |bencher, _| {
            bencher.iter(|| dominance(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("one_sided", dims), &dims, |bencher, _| {
            bencher.iter(|| dominates(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(
            BenchmarkId::new("dominating_subspace", dims),
            &dims,
            |bencher, _| bencher.iter(|| dominating_subspace(black_box(&a), black_box(&b))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);

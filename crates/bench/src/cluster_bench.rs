//! Cluster benchmark: the same serving workload measured against a
//! plain single-node server and against coordinators fronting 1, 2,
//! and 4 shards — what does scatter-gather plus the cross-shard subset
//! merge cost, and what does sharding buy once per-shard skylines
//! shrink?
//!
//! Two phases per topology, mirroring the single-node serving bench:
//!
//! * **cold** — before every query one dominated point is streamed in,
//!   bumping the content version, so the coordinator re-gathers and
//!   re-merges: the full distributed pipeline per request. (The
//!   single-node baseline instead patches its cached result forward by
//!   the mutation's skyline delta and answers warm — the incremental
//!   maintenance path a coordinator has to beat.)
//! * **warm** — the identical query repeated. The single-node server
//!   answers from its result cache; the cluster's shards answer from
//!   theirs, but the coordinator still gathers and re-merges, so this
//!   phase isolates the scatter-gather + merge overhead.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::path::Path;
use std::time::Instant;

use skyline_cluster::{Cluster, ClusterConfig, ClusterHandle};
use skyline_data::SyntheticSpec;
use skyline_obs::json::{ObjectWriter, Value};
use skyline_serve::client::{request_with_retry, RetryPolicy, Session};
use skyline_serve::{Server, ServerConfig, ServerHandle};

use crate::serve_bench::{expect_field, percentile, phase_json, Phase};

/// Shard counts measured next to the single-node baseline.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn create_body(spec: &SyntheticSpec) -> String {
    format!(
        "{{\"name\": \"bench\", \"synthetic\": {{\"distribution\": \"{}\", \"n\": {}, \"dims\": {}, \"seed\": {}}}}}",
        spec.distribution.tag(),
        spec.cardinality,
        spec.dims,
        spec.seed
    )
}

/// Create the benchmark dataset and run the cold/warm phases against
/// whatever is listening on `addr` (shard server or coordinator — the
/// API is the same).
/// Per-stage latency samples harvested from the `timings=1` field of
/// warm responses, in first-seen stage order.
type StageSamples = Vec<(String, Vec<u64>)>;

/// Fold one response's `timings` object into the running samples.
fn collect_stage_samples(samples: &mut StageSamples, body: &str) {
    let Ok(v) = Value::parse(body) else { return };
    let Some(Value::Obj(pairs)) = v.get("timings") else {
        return;
    };
    for (stage, us) in pairs {
        let Some(us) = us.as_u64() else { continue };
        match samples.iter_mut().find(|(name, _)| name == stage) {
            Some((_, v)) => v.push(us),
            None => samples.push((stage.clone(), vec![us])),
        }
    }
}

/// Render stage samples as `{"stages": {...}, "dominant_stage": ...}`
/// fields on `obj`: per-stage p50/p99 plus the stage owning the most
/// total attributed time.
fn write_stage_fields(obj: &mut ObjectWriter, samples: &mut StageSamples) {
    if samples.is_empty() {
        return;
    }
    let mut stages = ObjectWriter::new();
    let mut dominant = ("", 0u64);
    for (stage, lat) in samples.iter_mut() {
        lat.sort_unstable();
        let total: u64 = lat.iter().sum();
        if total >= dominant.1 {
            dominant = (stage, total);
        }
        let mut w = ObjectWriter::new();
        w.u64_field("p50_us", percentile(lat, 50.0))
            .u64_field("p99_us", percentile(lat, 99.0))
            .u64_field("total_us", total);
        stages.raw_field(stage, &w.finish());
    }
    let dominant = dominant.0.to_string();
    obj.raw_field("stages", &stages.finish())
        .str_field("dominant_stage", &dominant);
}

fn measure_endpoint(
    addr: SocketAddr,
    spec: &SyntheticSpec,
    cold_requests: usize,
    warm_requests: usize,
) -> std::io::Result<(Phase, Phase, StageSamples)> {
    let created = request_with_retry(
        addr,
        "POST",
        "/datasets",
        create_body(spec).as_bytes(),
        &RetryPolicy::default(),
    )?;
    if created.status != 201 {
        return Err(std::io::Error::other(format!(
            "dataset creation failed: {}",
            created.body_str()
        )));
    }
    let mut session = Session::connect(addr)?;
    const QUERY: &str = "/skyline?dataset=bench&algo=SDI-Subset";
    // A point beaten by everything: bumps the version (and so busts
    // every cache) without changing the skyline, so cold samples stay
    // comparable.
    let dominated_row: Vec<String> = (0..spec.dims).map(|_| "1e9".to_string()).collect();
    let insert_body = format!("{{\"rows\": [[{}]]}}", dominated_row.join(","));

    // Warm-up, and verify the query path end to end before timing.
    expect_field(&session.request("GET", QUERY, &[])?.body_str(), "\"ids\"")?;

    let mut cold = Phase {
        latencies_us: Vec::with_capacity(cold_requests),
        wall_secs: 0.0,
    };
    let cold_start = Instant::now();
    for _ in 0..cold_requests {
        let resp = session.request("POST", "/datasets/bench/points", insert_body.as_bytes())?;
        if resp.status != 200 {
            return Err(std::io::Error::other(format!(
                "insert failed: {}",
                resp.body_str()
            )));
        }
        let t = Instant::now();
        let resp = session.request("GET", QUERY, &[])?;
        cold.latencies_us.push(t.elapsed().as_micros() as u64);
        // Post-mutation behaviour differs by topology: a coordinator
        // re-merges (always "cached":false), while a single-node server
        // patches its cached entry forward by the mutation's delta and
        // answers warm. Both are the real serving path after a write.
        expect_field(&resp.body_str(), "\"ids\"")?;
    }
    cold.wall_secs = cold_start.elapsed().as_secs_f64();

    // Warm queries also ask for the per-stage breakdown, so the
    // artifact can attribute where warm-path time goes per topology.
    let mut warm = Phase {
        latencies_us: Vec::with_capacity(warm_requests),
        wall_secs: 0.0,
    };
    let mut stage_samples: StageSamples = Vec::new();
    let timed_query = format!("{QUERY}&timings=1");
    let warm_start = Instant::now();
    for _ in 0..warm_requests {
        let t = Instant::now();
        let resp = session.request("GET", &timed_query, &[])?;
        warm.latencies_us.push(t.elapsed().as_micros() as u64);
        let body = resp.body_str();
        expect_field(&body, "\"ids\"")?;
        collect_stage_samples(&mut stage_samples, &body);
    }
    warm.wall_secs = warm_start.elapsed().as_secs_f64();

    cold.latencies_us.sort_unstable();
    warm.latencies_us.sort_unstable();
    Ok((cold, warm, stage_samples))
}

fn start_topology(
    shard_count: usize,
    threads: usize,
) -> std::io::Result<(Vec<ServerHandle>, ClusterHandle)> {
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        shards.push(Server::start(ServerConfig {
            threads,
            ..Default::default()
        })?);
    }
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.local_addr()).collect();
    let coordinator = Cluster::start(ClusterConfig {
        threads,
        ..ClusterConfig::new(addrs)
    })?;
    Ok((shards, coordinator))
}

/// Run the cluster benchmark and return the `BENCH_*.json` document.
pub fn cluster_bench_json(
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    warm_requests: usize,
    threads: usize,
) -> std::io::Result<String> {
    let threads = if threads == 0 {
        crate::artifact::default_bench_threads()
    } else {
        threads
    };

    eprintln!("    single-node baseline");
    let mut baseline_server = Server::start(ServerConfig {
        threads,
        ..Default::default()
    })?;
    let (base_cold, base_warm, mut base_stages) = measure_endpoint(
        baseline_server.local_addr(),
        spec,
        cold_requests,
        warm_requests,
    )?;
    baseline_server.shutdown();
    let mut single = ObjectWriter::new();
    single
        .raw_field("cold", &phase_json(&base_cold))
        .raw_field("warm", &phase_json(&base_warm));
    write_stage_fields(&mut single, &mut base_stages);

    let mut sharded_objs: Vec<String> = Vec::new();
    for &shard_count in &SHARD_COUNTS {
        eprintln!("    cluster with {shard_count} shard(s)");
        let (mut shards, mut coordinator) = start_topology(shard_count, threads)?;
        let (cold, warm, mut stages) =
            measure_endpoint(coordinator.local_addr(), spec, cold_requests, warm_requests)?;
        coordinator.shutdown();
        for shard in &mut shards {
            shard.shutdown();
        }
        let mut obj = ObjectWriter::new();
        obj.u64_field("shards", shard_count as u64)
            .raw_field("cold", &phase_json(&cold))
            .raw_field("warm", &phase_json(&warm));
        write_stage_fields(&mut obj, &mut stages);
        sharded_objs.push(obj.finish());
    }

    let mut workload = ObjectWriter::new();
    workload
        .str_field("distribution", spec.distribution.tag())
        .u64_field("cardinality", spec.cardinality as u64)
        .u64_field("dims", spec.dims as u64)
        .u64_field("seed", spec.seed)
        .str_field("algorithm", "SDI-Subset")
        .u64_field("server_threads", threads as u64)
        .u64_field("cold_requests", cold_requests as u64)
        .u64_field("warm_requests", warm_requests as u64);

    let mut cluster = ObjectWriter::new();
    cluster
        .raw_field("single_node", &single.finish())
        .raw_field("sharded", &format!("[{}]", sharded_objs.join(",")));

    let mut doc = ObjectWriter::new();
    doc.str_field("artifact", label)
        .raw_field("workload", &workload.finish())
        .raw_field("cluster", &cluster.finish());
    let mut out = doc.finish();
    out.push('\n');
    Ok(out)
}

/// Write the cluster benchmark artefact to `path`, echoing a short
/// summary to stderr.
pub fn write_cluster_bench_artifact(
    path: &Path,
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    warm_requests: usize,
    threads: usize,
) -> std::io::Result<()> {
    let doc = cluster_bench_json(label, spec, cold_requests, warm_requests, threads)?;
    let mut summary = String::new();
    let _ = write!(summary, "    cluster: {} bytes", doc.len());
    eprintln!("{summary}");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_data::Distribution;
    use skyline_obs::json::Value;

    #[test]
    fn cluster_bench_produces_a_valid_artifact() {
        let spec = SyntheticSpec {
            distribution: Distribution::Independent,
            cardinality: 250,
            dims: 3,
            seed: 5,
        };
        let doc = cluster_bench_json("TEST", &spec, 2, 2, 2).expect("bench run");
        let v = Value::parse(doc.trim()).expect("valid JSON");
        assert_eq!(v.get("artifact").and_then(Value::as_str), Some("TEST"));
        let cluster = v.get("cluster").expect("cluster section");
        assert!(cluster.get("single_node").is_some());
        let sharded = cluster
            .get("sharded")
            .and_then(Value::as_arr)
            .expect("sharded array");
        assert_eq!(sharded.len(), SHARD_COUNTS.len());
        for (entry, &count) in sharded.iter().zip(&SHARD_COUNTS) {
            assert_eq!(
                entry.get("shards").and_then(Value::as_u64),
                Some(count as u64)
            );
            let cold = entry.get("cold").expect("cold phase");
            assert_eq!(cold.get("requests").and_then(Value::as_u64), Some(2));
            assert!(cold.get("p50_us").and_then(Value::as_u64).is_some());

            // Per-stage breakdown from the warm phase: the coordinator
            // stages must be present with quantiles, and the dominant
            // stage must name one of them.
            let stages = entry.get("stages").expect("stages object");
            for stage in ["connect", "send", "shard_wait", "gather", "merge"] {
                let s = stages.get(stage).unwrap_or_else(|| panic!("stage {stage}"));
                assert!(s.get("p50_us").and_then(Value::as_u64).is_some());
                assert!(s.get("p99_us").and_then(Value::as_u64).is_some());
            }
            let dominant = entry
                .get("dominant_stage")
                .and_then(Value::as_str)
                .expect("dominant_stage");
            assert!(stages.get(dominant).is_some(), "dominant {dominant:?}");
        }
    }
}

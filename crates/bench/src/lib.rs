//! # skyline-bench
//!
//! The reproduction harness for every table and figure of the paper's
//! evaluation (Section 6), plus Criterion ablation benches.
//!
//! Run `cargo run -p skyline-bench --release --bin repro -- list` for the
//! experiment index; each experiment id (`fig2`, `table10`, …) regenerates
//! the corresponding artefact. Default sizes are scaled down to laptop
//! scale; `--full` switches to the paper's exact cardinalities.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;
pub mod cluster_bench;
pub mod experiments;
pub mod harness;
pub mod serve_bench;

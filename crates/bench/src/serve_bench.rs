//! Serving-mode benchmark: measure the HTTP query service end to end —
//! request throughput and latency percentiles, cold (every request
//! recomputes, because a streaming insert invalidated the cache) versus
//! cached (every request is a cache hit).
//!
//! The client side uses the in-tree keep-alive [`Session`], so the
//! numbers measure the server, not TCP handshakes.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use skyline_data::SyntheticSpec;
use skyline_obs::json::ObjectWriter;
use skyline_serve::client::{request_with_retry, RetryPolicy, Session};
use skyline_serve::{Server, ServerConfig};

/// One measured phase: sorted per-request latencies plus wall clock.
pub(crate) struct Phase {
    pub(crate) latencies_us: Vec<u64>,
    pub(crate) wall_secs: f64,
}

/// Nearest-rank percentile over an ascending latency list.
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

pub(crate) fn phase_json(phase: &Phase) -> String {
    let n = phase.latencies_us.len();
    let sum: u64 = phase.latencies_us.iter().sum();
    let mut w = ObjectWriter::new();
    w.u64_field("requests", n as u64)
        .u64_field("p50_us", percentile(&phase.latencies_us, 50.0))
        .u64_field("p99_us", percentile(&phase.latencies_us, 99.0))
        .f64_field("mean_us", if n == 0 { 0.0 } else { sum as f64 / n as f64 })
        .f64_field(
            "req_per_sec",
            if phase.wall_secs > 0.0 {
                n as f64 / phase.wall_secs
            } else {
                0.0
            },
        );
    w.finish()
}

pub(crate) fn expect_field(body: &str, needle: &str) -> std::io::Result<()> {
    if body.contains(needle) {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "response missing {needle:?}: {body}"
        )))
    }
}

/// Run the serving benchmark and return the `BENCH_*.json` document.
///
/// Cold phase: before each query one dominated point is streamed in, so
/// the content version moves and the query recomputes. Cached phase: the
/// same query repeated verbatim, all cache hits. `threads` is the
/// server's worker-pool size (0 = the artefact default).
pub fn serve_bench_json(
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    cached_requests: usize,
    threads: usize,
) -> std::io::Result<String> {
    let threads = if threads == 0 {
        crate::artifact::default_bench_threads()
    } else {
        threads
    };
    let mut server = Server::start(ServerConfig {
        threads,
        ..Default::default()
    })?;
    let addr = server.local_addr();

    let create_body = format!(
        "{{\"name\": \"bench\", \"synthetic\": {{\"distribution\": \"{}\", \"n\": {}, \"dims\": {}, \"seed\": {}}}}}",
        spec.distribution.tag(),
        spec.cardinality,
        spec.dims,
        spec.seed
    );
    // Setup goes through the retrying client: a freshly started server
    // under load may shed the first attempt, which must not fail the
    // whole benchmark run.
    let created = request_with_retry(
        addr,
        "POST",
        "/datasets",
        create_body.as_bytes(),
        &RetryPolicy::default(),
    )?;
    if created.status != 201 {
        return Err(std::io::Error::other(format!(
            "dataset creation failed: {}",
            created.body_str()
        )));
    }

    let mut session = Session::connect(addr)?;
    const QUERY: &str = "/skyline?dataset=bench&algo=SDI-Subset";
    // A point beaten by everything: the streaming insert is cheap and the
    // skyline itself never changes, so every cold sample does equal work.
    let dominated_row: Vec<String> = (0..spec.dims).map(|_| "1e9".to_string()).collect();
    let insert_body = format!("{{\"rows\": [[{}]]}}", dominated_row.join(","));

    // Warm-up (also verifies the query path before timing anything).
    expect_field(&session.request("GET", QUERY, &[])?.body_str(), "\"ids\"")?;

    let mut cold = Phase {
        latencies_us: Vec::with_capacity(cold_requests),
        wall_secs: 0.0,
    };
    let cold_start = Instant::now();
    for _ in 0..cold_requests {
        let resp = session.request("POST", "/datasets/bench/points", insert_body.as_bytes())?;
        if resp.status != 200 {
            return Err(std::io::Error::other(format!(
                "insert failed: {}",
                resp.body_str()
            )));
        }
        let t = Instant::now();
        let resp = session.request("GET", QUERY, &[])?;
        cold.latencies_us.push(t.elapsed().as_micros() as u64);
        expect_field(&resp.body_str(), "\"cached\":false")?;
    }
    cold.wall_secs = cold_start.elapsed().as_secs_f64();

    // The final cold query already primed the cache at the final
    // version, so every request from here on is a pure hit.
    let mut cached = Phase {
        latencies_us: Vec::with_capacity(cached_requests),
        wall_secs: 0.0,
    };
    let cached_start = Instant::now();
    for _ in 0..cached_requests {
        let t = Instant::now();
        let resp = session.request("GET", QUERY, &[])?;
        cached.latencies_us.push(t.elapsed().as_micros() as u64);
        expect_field(&resp.body_str(), "\"cached\":true")?;
    }
    cached.wall_secs = cached_start.elapsed().as_secs_f64();

    cold.latencies_us.sort_unstable();
    cached.latencies_us.sort_unstable();
    let stats = server.cache_stats();
    server.shutdown();

    let mut cache = ObjectWriter::new();
    cache
        .u64_field("hits", stats.hits)
        .u64_field("misses", stats.misses)
        .u64_field("invalidations", stats.invalidations);

    let mut workload = ObjectWriter::new();
    workload
        .str_field("distribution", spec.distribution.tag())
        .u64_field("cardinality", spec.cardinality as u64)
        .u64_field("dims", spec.dims as u64)
        .u64_field("seed", spec.seed)
        .str_field("algorithm", "SDI-Subset")
        .u64_field("server_threads", threads as u64);

    let mut serve = ObjectWriter::new();
    serve
        .raw_field("cold", &phase_json(&cold))
        .raw_field("cached", &phase_json(&cached))
        .raw_field("cache", &cache.finish());

    let mut doc = ObjectWriter::new();
    doc.str_field("artifact", label)
        .raw_field("workload", &workload.finish())
        .raw_field("serve", &serve.finish());
    let mut out = doc.finish();
    out.push('\n');
    Ok(out)
}

/// Write the serving benchmark artefact to `path`, echoing a short
/// summary to stderr.
pub fn write_serve_bench_artifact(
    path: &Path,
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    cached_requests: usize,
    threads: usize,
) -> std::io::Result<()> {
    let doc = serve_bench_json(label, spec, cold_requests, cached_requests, threads)?;
    let mut summary = String::new();
    let _ = write!(summary, "    serve: {} bytes", doc.len());
    eprintln!("{summary}");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_data::Distribution;
    use skyline_obs::json::Value;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn serve_bench_produces_a_valid_artifact() {
        let spec = SyntheticSpec {
            distribution: Distribution::Independent,
            cardinality: 300,
            dims: 4,
            seed: 11,
        };
        let doc = serve_bench_json("BENCH_TEST_SERVE", &spec, 5, 10, 2).expect("bench runs");
        let v = Value::parse(doc.trim()).expect("valid JSON");
        assert_eq!(
            v.get("artifact").unwrap().as_str(),
            Some("BENCH_TEST_SERVE")
        );
        let serve = v.get("serve").unwrap();
        let cold = serve.get("cold").unwrap();
        let cached = serve.get("cached").unwrap();
        assert_eq!(cold.get("requests").unwrap().as_u64(), Some(5));
        assert_eq!(cached.get("requests").unwrap().as_u64(), Some(10));
        assert!(cold.get("p99_us").unwrap().as_u64().unwrap() >= 1);
        assert!(cached.get("req_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // Cold queries recompute; cached ones must not be slower than the
        // cold p99 on the same connection (they skip the whole algorithm).
        let cache = serve.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(10));
        assert!(cache.get("invalidations").unwrap().as_u64().unwrap() >= 1);
    }
}

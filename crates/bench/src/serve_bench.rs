//! Serving-mode benchmark: measure the HTTP query service end to end —
//! request throughput and latency percentiles across three phases:
//!
//! - **cold** — every request recomputes, measured on a server with the
//!   result cache disabled (mutations patch cached entries forward now,
//!   so a cache-enabled server cannot show the recompute path after a
//!   mutation any more);
//! - **patched** — a streaming insert before each request moves the
//!   content version, but the mutation's skyline delta patches the
//!   cached entry to the new version, so the query still answers warm;
//! - **cached** — the same query repeated verbatim, all plain hits.
//!
//! The patched-vs-cold gap is the headline of the incremental
//! maintenance engine: post-mutation queries at cache-hit latency.
//!
//! The client side uses the in-tree keep-alive [`Session`], so the
//! numbers measure the server, not TCP handshakes.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use skyline_data::SyntheticSpec;
use skyline_obs::json::{ObjectWriter, Value};
use skyline_serve::client::{request_with_retry, RetryPolicy, Session};
use skyline_serve::{Server, ServerConfig, ServerHandle};

/// One measured phase: sorted per-request latencies plus wall clock.
pub(crate) struct Phase {
    pub(crate) latencies_us: Vec<u64>,
    pub(crate) wall_secs: f64,
}

/// Nearest-rank percentile over an ascending latency list.
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

pub(crate) fn phase_json(phase: &Phase) -> String {
    let n = phase.latencies_us.len();
    let sum: u64 = phase.latencies_us.iter().sum();
    let mut w = ObjectWriter::new();
    w.u64_field("requests", n as u64)
        .u64_field("p50_us", percentile(&phase.latencies_us, 50.0))
        .u64_field("p99_us", percentile(&phase.latencies_us, 99.0))
        .f64_field("mean_us", if n == 0 { 0.0 } else { sum as f64 / n as f64 })
        .f64_field(
            "req_per_sec",
            if phase.wall_secs > 0.0 {
                n as f64 / phase.wall_secs
            } else {
                0.0
            },
        );
    w.finish()
}

pub(crate) fn expect_field(body: &str, needle: &str) -> std::io::Result<()> {
    if body.contains(needle) {
        Ok(())
    } else {
        Err(std::io::Error::other(format!(
            "response missing {needle:?}: {body}"
        )))
    }
}

const QUERY: &str = "/skyline?dataset=bench&algo=SDI-Subset";

/// Start a server with `cache_capacity`, create the benchmark dataset
/// on it, and connect a keep-alive session.
fn bench_server(
    spec: &SyntheticSpec,
    threads: usize,
    cache_capacity: usize,
) -> std::io::Result<(ServerHandle, Session)> {
    let server = Server::start(ServerConfig {
        threads,
        cache_capacity,
        ..Default::default()
    })?;
    let addr = server.local_addr();
    let create_body = format!(
        "{{\"name\": \"bench\", \"synthetic\": {{\"distribution\": \"{}\", \"n\": {}, \"dims\": {}, \"seed\": {}}}}}",
        spec.distribution.tag(),
        spec.cardinality,
        spec.dims,
        spec.seed
    );
    // Setup goes through the retrying client: a freshly started server
    // under load may shed the first attempt, which must not fail the
    // whole benchmark run.
    let created = request_with_retry(
        addr,
        "POST",
        "/datasets",
        create_body.as_bytes(),
        &RetryPolicy::default(),
    )?;
    if created.status != 201 {
        return Err(std::io::Error::other(format!(
            "dataset creation failed: {}",
            created.body_str()
        )));
    }
    let session = Session::connect(addr)?;
    Ok((server, session))
}

/// One insert + timed query sample of a mutation-heavy phase. The
/// response must carry `want_cached` — `false` on the cache-disabled
/// cold server, `true` on the patch-forward server.
fn mutate_and_query(
    session: &mut Session,
    insert_body: &str,
    phase: &mut Phase,
    want_cached: bool,
) -> std::io::Result<()> {
    let resp = session.request("POST", "/datasets/bench/points", insert_body.as_bytes())?;
    if resp.status != 200 {
        return Err(std::io::Error::other(format!(
            "insert failed: {}",
            resp.body_str()
        )));
    }
    if want_cached {
        // The mutation's delta must have carried the entry forward.
        expect_field(&resp.body_str(), "\"cache_patched\":1")?;
    }
    let t = Instant::now();
    let resp = session.request("GET", QUERY, &[])?;
    phase.latencies_us.push(t.elapsed().as_micros() as u64);
    expect_field(
        &resp.body_str(),
        if want_cached {
            "\"cached\":true"
        } else {
            "\"cached\":false"
        },
    )
}

/// Run the serving benchmark and return the `BENCH_*.json` document.
///
/// Cold phase (cache-disabled server): before each query one dominated
/// point is streamed in and the query recomputes. Patched phase (cache
/// enabled, same mutation pattern): the insert's skyline delta patches
/// the cached entry forward, so the post-mutation query answers warm.
/// Cached phase: the same query repeated verbatim, all cache hits.
/// `threads` is the server's worker-pool size (0 = the artefact
/// default).
pub fn serve_bench_json(
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    cached_requests: usize,
    threads: usize,
) -> std::io::Result<String> {
    let threads = if threads == 0 {
        crate::artifact::default_bench_threads()
    } else {
        threads
    };
    // A point beaten by everything: the streaming insert is cheap and the
    // skyline itself never changes, so every mutation sample does equal
    // work (and its delta is empty, the cheapest possible patch).
    let dominated_row: Vec<String> = (0..spec.dims).map(|_| "1e9".to_string()).collect();
    let insert_body = format!("{{\"rows\": [[{}]]}}", dominated_row.join(","));

    // Cold: the recompute path, pinned by disabling the cache outright.
    let mut cold = Phase {
        latencies_us: Vec::with_capacity(cold_requests),
        wall_secs: 0.0,
    };
    {
        let (mut server, mut session) = bench_server(spec, threads, 0)?;
        // Warm-up (also verifies the query path before timing anything).
        expect_field(&session.request("GET", QUERY, &[])?.body_str(), "\"ids\"")?;
        let cold_start = Instant::now();
        for _ in 0..cold_requests {
            mutate_and_query(&mut session, &insert_body, &mut cold, false)?;
        }
        cold.wall_secs = cold_start.elapsed().as_secs_f64();
        server.shutdown();
    }

    // Patched + cached phases share one cache-enabled server.
    let (mut server, mut session) = bench_server(spec, threads, 256)?;
    // The warm-up query primes the cache entry the patched phase rides.
    expect_field(&session.request("GET", QUERY, &[])?.body_str(), "\"ids\"")?;

    let mut patched = Phase {
        latencies_us: Vec::with_capacity(cold_requests),
        wall_secs: 0.0,
    };
    let patched_start = Instant::now();
    for _ in 0..cold_requests {
        mutate_and_query(&mut session, &insert_body, &mut patched, true)?;
    }
    patched.wall_secs = patched_start.elapsed().as_secs_f64();

    let mut cached = Phase {
        latencies_us: Vec::with_capacity(cached_requests),
        wall_secs: 0.0,
    };
    let cached_start = Instant::now();
    for _ in 0..cached_requests {
        let t = Instant::now();
        let resp = session.request("GET", QUERY, &[])?;
        cached.latencies_us.push(t.elapsed().as_micros() as u64);
        expect_field(&resp.body_str(), "\"cached\":true")?;
    }
    cached.wall_secs = cached_start.elapsed().as_secs_f64();

    cold.latencies_us.sort_unstable();
    patched.latencies_us.sort_unstable();
    cached.latencies_us.sort_unstable();
    let stats = server.cache_stats();
    server.shutdown();

    let mut cache = ObjectWriter::new();
    cache
        .u64_field("hits", stats.hits)
        .u64_field("misses", stats.misses)
        .u64_field("invalidations", stats.invalidations)
        .u64_field("patched", stats.patched);

    let mut workload = ObjectWriter::new();
    workload
        .str_field("distribution", spec.distribution.tag())
        .u64_field("cardinality", spec.cardinality as u64)
        .u64_field("dims", spec.dims as u64)
        .u64_field("seed", spec.seed)
        .str_field("algorithm", "SDI-Subset")
        .u64_field("server_threads", threads as u64);

    let mut serve = ObjectWriter::new();
    serve
        .raw_field("cold", &phase_json(&cold))
        .raw_field("patched", &phase_json(&patched))
        .raw_field("cached", &phase_json(&cached))
        .raw_field("cache", &cache.finish());

    let mut doc = ObjectWriter::new();
    doc.str_field("artifact", label)
        .raw_field("workload", &workload.finish())
        .raw_field("serve", &serve.finish());
    let mut out = doc.finish();
    out.push('\n');
    Ok(out)
}

/// Poll `session` until the follower serves `dataset` at `version` or
/// beyond; returns the elapsed wait. Errors out after `deadline`.
fn wait_for_replica_version(
    session: &mut Session,
    query: &str,
    version: u64,
    deadline: std::time::Duration,
) -> std::io::Result<std::time::Duration> {
    let start = Instant::now();
    loop {
        if let Ok(resp) = session.request("GET", query, &[]) {
            if resp.status == 200 {
                let served = Value::parse(&resp.body_str())
                    .ok()
                    .and_then(|v| v.get("version").and_then(Value::as_u64));
                if served.is_some_and(|v| v >= version) {
                    return Ok(start.elapsed());
                }
            }
        }
        if start.elapsed() > deadline {
            return Err(std::io::Error::other(format!(
                "follower never reached version {version}"
            )));
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// Run the replication benchmark and return the `BENCH_*.json` document.
///
/// A follower tails the primary's change feed while the primary absorbs
/// `mutations` streaming inserts; each sample times how long the
/// mutation takes to become visible on the follower (replication lag,
/// ack on the primary to serving on the replica). Then `reads` queries
/// hammer the follower alone for read throughput off the primary's
/// critical path.
pub fn replication_bench_json(
    label: &str,
    spec: &SyntheticSpec,
    mutations: usize,
    reads: usize,
    threads: usize,
) -> std::io::Result<String> {
    let threads = if threads == 0 {
        crate::artifact::default_bench_threads()
    } else {
        threads
    };
    let (mut primary, mut session) = bench_server(spec, threads, 256)?;
    let follower = Server::start(ServerConfig {
        threads,
        follow: Some(primary.local_addr()),
        follow_wait_ms: 50,
        ..Default::default()
    })?;
    let mut replica_session = Session::connect(follower.local_addr())?;
    let sync_deadline = std::time::Duration::from_secs(30);

    // Creation inserted one row per point: the content version is the
    // cardinality. Wait out the follower's initial snapshot sync so the
    // lag samples measure the feed, not the bootstrap.
    let mut version = spec.cardinality as u64;
    wait_for_replica_version(&mut replica_session, QUERY, version, sync_deadline)?;

    let dominated_row: Vec<String> = (0..spec.dims).map(|_| "1e9".to_string()).collect();
    let insert_body = format!("{{\"rows\": [[{}]]}}", dominated_row.join(","));
    let mut lag = Phase {
        latencies_us: Vec::with_capacity(mutations),
        wall_secs: 0.0,
    };
    let lag_start = Instant::now();
    for _ in 0..mutations {
        let resp = session.request("POST", "/datasets/bench/points", insert_body.as_bytes())?;
        if resp.status != 200 {
            return Err(std::io::Error::other(format!(
                "insert failed: {}",
                resp.body_str()
            )));
        }
        version += 1;
        let waited = wait_for_replica_version(&mut replica_session, QUERY, version, sync_deadline)?;
        lag.latencies_us.push(waited.as_micros() as u64);
    }
    lag.wall_secs = lag_start.elapsed().as_secs_f64();

    // Pure follower reads: the primary is idle, every answer is local.
    let mut follower_reads = Phase {
        latencies_us: Vec::with_capacity(reads),
        wall_secs: 0.0,
    };
    let reads_start = Instant::now();
    for _ in 0..reads {
        let t = Instant::now();
        let resp = replica_session.request("GET", QUERY, &[])?;
        follower_reads
            .latencies_us
            .push(t.elapsed().as_micros() as u64);
        expect_field(&resp.body_str(), "\"ids\"")?;
    }
    follower_reads.wall_secs = reads_start.elapsed().as_secs_f64();

    // The follower's own accounting, straight from its /metrics.
    let metrics = replica_session.request("GET", "/metrics", &[])?;
    let counters = Value::parse(&metrics.body_str())
        .ok()
        .and_then(|v| {
            let rep = v.get("replication")?;
            Some((
                rep.get("applied_total").and_then(Value::as_u64)?,
                rep.get("duplicates_total").and_then(Value::as_u64)?,
                rep.get("resyncs_total").and_then(Value::as_u64)?,
            ))
        })
        .ok_or_else(|| std::io::Error::other("follower /metrics lacks replication counters"))?;
    primary.shutdown();

    // Failover: with the primary gone, time the promotion itself and
    // the gap until the ex-follower accepts its first write — the
    // node-side share of the detection-to-recovery budget (the
    // coordinator's probe cadence is configuration, not mechanism).
    let failover_start = Instant::now();
    let resp = replica_session.request("POST", "/promote", b"{\"epoch\":1}")?;
    if resp.status != 200 {
        return Err(std::io::Error::other(format!(
            "promotion failed: {}",
            resp.body_str()
        )));
    }
    let promote_us = failover_start.elapsed().as_micros() as u64;
    let resp = replica_session.request("POST", "/datasets/bench/points", insert_body.as_bytes())?;
    if resp.status != 200 {
        return Err(std::io::Error::other(format!(
            "promoted node refused a write: {}",
            resp.body_str()
        )));
    }
    expect_field(&resp.body_str(), "\"epoch\":1")?;
    let first_write_us = failover_start.elapsed().as_micros() as u64;

    lag.latencies_us.sort_unstable();
    follower_reads.latencies_us.sort_unstable();

    let mut workload = ObjectWriter::new();
    workload
        .str_field("distribution", spec.distribution.tag())
        .u64_field("cardinality", spec.cardinality as u64)
        .u64_field("dims", spec.dims as u64)
        .u64_field("seed", spec.seed)
        .str_field("algorithm", "SDI-Subset")
        .u64_field("server_threads", threads as u64);

    let mut feed = ObjectWriter::new();
    feed.u64_field("applied_total", counters.0)
        .u64_field("duplicates_total", counters.1)
        .u64_field("resyncs_total", counters.2);

    let mut failover = ObjectWriter::new();
    failover
        .u64_field("promote_us", promote_us)
        .u64_field("first_write_us", first_write_us);

    let mut replication = ObjectWriter::new();
    replication
        .raw_field("lag", &phase_json(&lag))
        .raw_field("follower_reads", &phase_json(&follower_reads))
        .raw_field("feed", &feed.finish())
        .raw_field("failover", &failover.finish());

    let mut doc = ObjectWriter::new();
    doc.str_field("artifact", label)
        .raw_field("workload", &workload.finish())
        .raw_field("replication", &replication.finish());
    let mut out = doc.finish();
    out.push('\n');
    Ok(out)
}

/// Write the replication benchmark artefact to `path`, echoing a short
/// summary to stderr.
pub fn write_replication_bench_artifact(
    path: &Path,
    label: &str,
    spec: &SyntheticSpec,
    mutations: usize,
    reads: usize,
    threads: usize,
) -> std::io::Result<()> {
    let doc = replication_bench_json(label, spec, mutations, reads, threads)?;
    let mut summary = String::new();
    let _ = write!(summary, "    replication: {} bytes", doc.len());
    eprintln!("{summary}");
    std::fs::write(path, doc)
}

/// Write the serving benchmark artefact to `path`, echoing a short
/// summary to stderr.
pub fn write_serve_bench_artifact(
    path: &Path,
    label: &str,
    spec: &SyntheticSpec,
    cold_requests: usize,
    cached_requests: usize,
    threads: usize,
) -> std::io::Result<()> {
    let doc = serve_bench_json(label, spec, cold_requests, cached_requests, threads)?;
    let mut summary = String::new();
    let _ = write!(summary, "    serve: {} bytes", doc.len());
    eprintln!("{summary}");
    std::fs::write(path, doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_data::Distribution;
    use skyline_obs::json::Value;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn replication_bench_produces_a_valid_artifact() {
        let spec = SyntheticSpec {
            distribution: Distribution::Independent,
            cardinality: 200,
            dims: 3,
            seed: 13,
        };
        let doc = replication_bench_json("BENCH_TEST_REPL", &spec, 5, 8, 2).expect("bench runs");
        let v = Value::parse(doc.trim()).expect("valid JSON");
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("BENCH_TEST_REPL"));
        let rep = v.get("replication").unwrap();
        let lag = rep.get("lag").unwrap();
        assert_eq!(lag.get("requests").unwrap().as_u64(), Some(5));
        assert!(lag.get("p99_us").unwrap().as_u64().unwrap() >= 1);
        let reads = rep.get("follower_reads").unwrap();
        assert_eq!(reads.get("requests").unwrap().as_u64(), Some(8));
        assert!(reads.get("req_per_sec").unwrap().as_f64().unwrap() > 0.0);
        let feed = rep.get("feed").unwrap();
        // Every lag sample rode the feed; the initial sync is a resync.
        assert!(feed.get("applied_total").unwrap().as_u64().unwrap() >= 5);
        assert!(feed.get("resyncs_total").unwrap().as_u64().unwrap() >= 1);
        let failover = rep.get("failover").unwrap();
        let promote = failover.get("promote_us").unwrap().as_u64().unwrap();
        let first_write = failover.get("first_write_us").unwrap().as_u64().unwrap();
        assert!(promote >= 1);
        assert!(first_write >= promote, "write accepted before promotion?");
    }

    #[test]
    fn serve_bench_produces_a_valid_artifact() {
        let spec = SyntheticSpec {
            distribution: Distribution::Independent,
            cardinality: 300,
            dims: 4,
            seed: 11,
        };
        let doc = serve_bench_json("BENCH_TEST_SERVE", &spec, 5, 10, 2).expect("bench runs");
        let v = Value::parse(doc.trim()).expect("valid JSON");
        assert_eq!(
            v.get("artifact").unwrap().as_str(),
            Some("BENCH_TEST_SERVE")
        );
        let serve = v.get("serve").unwrap();
        let cold = serve.get("cold").unwrap();
        let patched = serve.get("patched").unwrap();
        let cached = serve.get("cached").unwrap();
        assert_eq!(cold.get("requests").unwrap().as_u64(), Some(5));
        assert_eq!(patched.get("requests").unwrap().as_u64(), Some(5));
        assert_eq!(cached.get("requests").unwrap().as_u64(), Some(10));
        assert!(cold.get("p99_us").unwrap().as_u64().unwrap() >= 1);
        assert!(cached.get("req_per_sec").unwrap().as_f64().unwrap() > 0.0);
        let cache = serve.get("cache").unwrap();
        // Warm-up miss, then 5 patched-phase hits + 10 cached-phase hits.
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(15));
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(
            cache.get("patched").unwrap().as_u64(),
            Some(5),
            "every insert patched the entry forward"
        );
        assert_eq!(cache.get("invalidations").unwrap().as_u64(), Some(0));
    }
}

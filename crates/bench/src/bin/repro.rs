//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # experiment index
//! repro <exp-id>... [--full] [--runs N]
//! repro all [--full]         # everything, in paper order
//! ```
//!
//! Default workloads are laptop-scale; `--full` uses the paper's exact
//! cardinalities (hours of compute for the AC sweeps). Results print to
//! stdout; progress goes to stderr.

use std::process::ExitCode;

use skyline_bench::experiments::{experiment_index, run_experiment};
use skyline_bench::harness::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let runs = match args.iter().position(|a| a == "--runs") {
        None => {
            if full {
                10
            } else {
                1
            }
        }
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(r) if r >= 1 => r,
            _ => {
                eprintln!("error: --runs expects a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let scale = Scale { full, runs };

    let mut ids: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a.as_str() {
            "--full" => {}
            "--runs" => skip_next = true,
            other => ids.push(other.to_string()),
        }
    }

    if ids.is_empty() || ids[0] == "list" {
        println!("experiments (laptop-scale by default; add --full for paper sizes):");
        for (id, desc) in experiment_index() {
            println!("  {id:<9} {desc}");
        }
        println!("  all       run everything in paper order");
        return ExitCode::SUCCESS;
    }

    if ids.len() == 1 && ids[0] == "all" {
        ids = experiment_index()
            .iter()
            .map(|(id, _)| id.to_string())
            // The RT ids alias their DT sibling; running both would just
            // repeat the same computation.
            .filter(|id| !matches!(id.as_str(), "fig5" | "table3" | "table5" | "table7" | "table9" | "table11" | "table13"))
            .collect();
    }

    for id in &ids {
        eprintln!(
            "==> {id} ({} scale, {} run{} per cell)",
            if full { "paper" } else { "laptop" },
            runs,
            if runs == 1 { "" } else { "s" }
        );
        let start = std::time::Instant::now();
        match run_experiment(id, scale) {
            Ok(output) => {
                println!("{output}");
                eprintln!("    done in {:.1}s", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `repro list` for the experiment index");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

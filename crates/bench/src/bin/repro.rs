//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # experiment index
//! repro <exp-id>... [--full] [--runs N]
//! repro all [--full]         # everything, in paper order
//! repro bench-json [--out BENCH_PR2.json] [--runs N] [--threads T]
//! repro bench-json --serve [--out BENCH_PR3.json] [--requests N] [--threads T]
//! repro bench-json --cluster [--out BENCH_PR6.json] [--requests N] [--threads T]
//! repro bench-json --replicated [--out BENCH_PR8.json] [--requests N] [--threads T]
//! ```
//!
//! `bench-json` measures the evaluation suite plus the parallel engines
//! on the fixed reference workload and writes a machine-readable
//! `BENCH_*.json` artefact (per-algorithm mean DT, milliseconds, skyline
//! size). `--threads` sets the worker count of the `P-*` rows; the
//! default is one per CPU, minimum two so the partition-merge path is
//! exercised.
//!
//! `bench-json --serve` benchmarks the HTTP query service instead:
//! request throughput and p50/p99 latency, cold (cache invalidated by a
//! streaming insert before every query) versus cached (identical query
//! repeated). `--requests N` sets the cold sample count (cached takes
//! 4×N); `--threads` sizes the server's worker pool.
//!
//! `bench-json --cluster` benchmarks the sharded coordinator: the same
//! workload against a plain single-node server and against clusters of
//! 1, 2, and 4 in-process shards, cold (full scatter-gather recompute)
//! versus warm (shard caches hit, coordinator still merges). Warm
//! queries run with `timings=1`, so each topology records per-stage
//! p50/p99 and the dominant stage. `--requests N` sets the cold sample
//! count (warm takes 2×N).
//!
//! `bench-json --replicated` benchmarks change-feed replication: a
//! follower (`--follow`) tails the primary while it absorbs streaming
//! inserts. Each sample times ack-on-primary to visible-on-follower
//! (replication lag, p50/p99), then pure follower reads measure the
//! read throughput a replica adds off the primary's critical path.
//! `--requests N` sets the lag sample count (follower reads take 4×N).
//!
//! Default workloads are laptop-scale; `--full` uses the paper's exact
//! cardinalities (hours of compute for the AC sweeps). Results print to
//! stdout; progress goes to stderr.

use std::process::ExitCode;

use skyline_bench::artifact::{reference_workload, write_bench_artifact};
use skyline_bench::cluster_bench::write_cluster_bench_artifact;
use skyline_bench::experiments::{experiment_index, run_experiment};
use skyline_bench::harness::Scale;
use skyline_bench::serve_bench::{write_replication_bench_artifact, write_serve_bench_artifact};

fn bench_json(args: &[String]) -> ExitCode {
    let serve = args.iter().any(|a| a == "--serve");
    let cluster = args.iter().any(|a| a == "--cluster");
    let replicated = args.iter().any(|a| a == "--replicated");
    let out = match args.iter().position(|a| a == "--out") {
        None if replicated => "BENCH_PR8.json".to_string(),
        None if cluster => "BENCH_PR6.json".to_string(),
        None if serve => "BENCH_PR3.json".to_string(),
        None => "BENCH_PR2.json".to_string(),
        Some(i) => match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("error: --out expects a path");
                return ExitCode::FAILURE;
            }
        },
    };
    let runs = match args.iter().position(|a| a == "--runs") {
        None => 3,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(r) if r >= 1 => r,
            _ => {
                eprintln!("error: --runs expects a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let threads = match args.iter().position(|a| a == "--threads") {
        None => 0, // auto: one per CPU, minimum two
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(t) if t >= 1 => t,
            _ => {
                eprintln!("error: --threads expects a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let label = std::path::Path::new(&out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_string();
    let spec = reference_workload();
    if replicated {
        let mutations = match args.iter().position(|a| a == "--requests") {
            None => 60,
            Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => r,
                _ => {
                    eprintln!("error: --requests expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
        };
        eprintln!(
            "==> bench-json --replicated: {} n={} d={} seed={} ({mutations} lag samples / {} follower reads) -> {out}",
            spec.distribution.tag(),
            spec.cardinality,
            spec.dims,
            spec.seed,
            mutations * 4
        );
        return match write_replication_bench_artifact(
            std::path::Path::new(&out),
            &label,
            &spec,
            mutations,
            mutations * 4,
            threads,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {out}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cluster {
        let cold = match args.iter().position(|a| a == "--requests") {
            None => 20,
            Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => r,
                _ => {
                    eprintln!("error: --requests expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
        };
        eprintln!(
            "==> bench-json --cluster: {} n={} d={} seed={} ({cold} cold / {} warm per topology) -> {out}",
            spec.distribution.tag(),
            spec.cardinality,
            spec.dims,
            spec.seed,
            cold * 2
        );
        return match write_cluster_bench_artifact(
            std::path::Path::new(&out),
            &label,
            &spec,
            cold,
            cold * 2,
            threads,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {out}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if serve {
        let cold = match args.iter().position(|a| a == "--requests") {
            None => 60,
            Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(r) if r >= 1 => r,
                _ => {
                    eprintln!("error: --requests expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
        };
        eprintln!(
            "==> bench-json --serve: {} n={} d={} seed={} ({cold} cold / {} cached) -> {out}",
            spec.distribution.tag(),
            spec.cardinality,
            spec.dims,
            spec.seed,
            cold * 4
        );
        return match write_serve_bench_artifact(
            std::path::Path::new(&out),
            &label,
            &spec,
            cold,
            cold * 4,
            threads,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {out}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    eprintln!(
        "==> bench-json: {} n={} d={} seed={} ({runs} runs) -> {out}",
        spec.distribution.tag(),
        spec.cardinality,
        spec.dims,
        spec.seed
    );
    match write_bench_artifact(std::path::Path::new(&out), &label, &spec, runs, threads) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench-json") {
        return bench_json(&args[1..]);
    }
    let full = args.iter().any(|a| a == "--full");
    let runs = match args.iter().position(|a| a == "--runs") {
        None => {
            if full {
                10
            } else {
                1
            }
        }
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(r) if r >= 1 => r,
            _ => {
                eprintln!("error: --runs expects a positive integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let scale = Scale { full, runs };

    let mut ids: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        match a.as_str() {
            "--full" => {}
            "--runs" => skip_next = true,
            other => ids.push(other.to_string()),
        }
    }

    if ids.is_empty() || ids[0] == "list" {
        println!("experiments (laptop-scale by default; add --full for paper sizes):");
        for (id, desc) in experiment_index() {
            println!("  {id:<9} {desc}");
        }
        println!("  all       run everything in paper order");
        println!(
            "  bench-json [--out BENCH_PR2.json] [--runs N] [--threads T]  machine-readable suite timings"
        );
        println!(
            "  bench-json --serve [--out BENCH_PR3.json] [--requests N]    HTTP service throughput/latency"
        );
        println!(
            "  bench-json --cluster [--out BENCH_PR6.json] [--requests N]  sharded coordinator vs single node"
        );
        return ExitCode::SUCCESS;
    }

    if ids.len() == 1 && ids[0] == "all" {
        ids = experiment_index()
            .iter()
            .map(|(id, _)| id.to_string())
            // The RT ids alias their DT sibling; running both would just
            // repeat the same computation.
            .filter(|id| {
                !matches!(
                    id.as_str(),
                    "fig5" | "table3" | "table5" | "table7" | "table9" | "table11" | "table13"
                )
            })
            .collect();
    }

    for id in &ids {
        eprintln!(
            "==> {id} ({} scale, {} run{} per cell)",
            if full { "paper" } else { "laptop" },
            runs,
            if runs == 1 { "" } else { "s" }
        );
        let start = std::time::Instant::now();
        match run_experiment(id, scale) {
            Ok(output) => {
                println!("{output}");
                eprintln!("    done in {:.1}s", start.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("run `repro list` for the experiment index");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

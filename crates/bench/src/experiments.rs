//! One reproduction routine per table/figure of the paper (Section 6).
//!
//! Every routine returns the rendered artefact as a string; the `repro`
//! binary prints it. Default workloads are laptop-scale (documented per
//! experiment in `EXPERIMENTS.md`); `Scale::full()` switches to the
//! paper's exact sizes.

use skyline_algos::boosted::{SalsaSubset, SdiSubset, SfsSubset};
use skyline_algos::{evaluation_suite, SkylineAlgorithm};
use skyline_core::dataset::Dataset;
use skyline_core::merge::{merge, MergeConfig, PivotScore};
use skyline_core::metrics::Metrics;
use skyline_data::real::{
    house, house_scaled, nba, nba_scaled, weather, weather_scaled, HOUSE_SIGMA, NBA_SIGMA,
    WEATHER_SIGMA,
};
use skyline_data::{Distribution, SyntheticSpec};

use crate::harness::{measure, render_histogram, Scale, Table};

/// The dimensionalities of the paper's dimension sweeps (Tables 2/3, 6/7,
/// 10/11).
pub const DIM_SWEEP: [usize; 9] = [2, 4, 6, 8, 10, 12, 16, 20, 24];

/// Deterministic seed per workload so that every invocation regenerates
/// identical datasets.
fn seed_for(dist: Distribution, n: usize, d: usize) -> u64 {
    let tag = match dist {
        Distribution::Independent => 1u64,
        Distribution::Correlated => 2,
        Distribution::AntiCorrelated => 3,
    };
    0x5CA1E * tag + (n as u64).wrapping_mul(31) + (d as u64).wrapping_mul(7)
}

fn dataset(dist: Distribution, n: usize, d: usize) -> Dataset {
    SyntheticSpec {
        distribution: dist,
        cardinality: n,
        dims: d,
        seed: seed_for(dist, n, d),
    }
    .generate()
}

/// Run the full evaluation suite over a sequence of workloads and build
/// the paper-layout DT and RT tables.
fn sweep(
    title_dt: String,
    title_rt: String,
    param_label: &str,
    workloads: Vec<(String, Dataset)>,
    sigma: Option<usize>,
    runs: usize,
) -> (Table, Table) {
    let suite = evaluation_suite(sigma);
    let mut dt_rows: Vec<(String, Vec<f64>)> = suite
        .iter()
        .map(|a| (a.name().to_string(), Vec::new()))
        .collect();
    let mut rt_rows = dt_rows.clone();
    let mut columns = Vec::new();
    for (label, data) in &workloads {
        columns.push(label.clone());
        let mut skyline_size: Option<usize> = None;
        for (i, algo) in suite.iter().enumerate() {
            let cell = measure(algo.as_ref(), data, runs);
            dt_rows[i].1.push(cell.mean_dt);
            rt_rows[i].1.push(cell.ms);
            match skyline_size {
                None => skyline_size = Some(cell.skyline),
                Some(s) => assert_eq!(
                    s,
                    cell.skyline,
                    "{} disagrees on the skyline for {label}",
                    algo.name()
                ),
            }
        }
    }
    (
        Table {
            title: title_dt,
            param_label: param_label.to_string(),
            columns: columns.clone(),
            rows: dt_rows,
        },
        Table {
            title: title_rt,
            param_label: param_label.to_string(),
            columns,
            rows: rt_rows,
        },
    )
}

/// Tables 2/3 (AC), 6/7 (CO), 10/11 (UI): dimensionality sweep at fixed
/// cardinality. Renders both the DT and the RT table (they come from the
/// same runs).
pub fn dim_sweep_tables(dist: Distribution, scale: Scale) -> String {
    let n = scale.pick(10_000, 200_000);
    let workloads: Vec<(String, Dataset)> = DIM_SWEEP
        .iter()
        .map(|&d| (format!("{d}-D"), dataset(dist, n, d)))
        .collect();
    let (table_no_dt, table_no_rt) = match dist {
        Distribution::AntiCorrelated => (2, 3),
        Distribution::Correlated => (6, 7),
        Distribution::Independent => (10, 11),
    };
    let tag = dist.tag();
    let (dt, rt) = sweep(
        format!(
            "Table {table_no_dt}: mean dominance test numbers on {tag} ({n} points) vs dimensionality"
        ),
        format!(
            "Table {table_no_rt}: elapsed processor time (ms) on {tag} ({n} points) vs dimensionality"
        ),
        "Dimensionality",
        workloads,
        None, // σ = round(d/3) per column via the per-run default
        scale.runs,
    );
    format!("{}\n{}", dt.render(), rt.render())
}

/// Tables 4/5 (AC), 8/9 (CO), 12/13 (UI): cardinality sweep at 8-D.
pub fn card_sweep_tables(dist: Distribution, scale: Scale) -> String {
    let cards: Vec<usize> = if scale.full {
        (1..=10).map(|i| i * 100_000).collect()
    } else {
        (1..=5).map(|i| i * 10_000).collect()
    };
    let d = 8;
    let workloads: Vec<(String, Dataset)> = cards
        .iter()
        .map(|&n| (format!("{}K", n / 1000), dataset(dist, n, d)))
        .collect();
    let (table_no_dt, table_no_rt) = match dist {
        Distribution::AntiCorrelated => (4, 5),
        Distribution::Correlated => (8, 9),
        Distribution::Independent => (12, 13),
    };
    let tag = dist.tag();
    let (dt, rt) = sweep(
        format!("Table {table_no_dt}: mean dominance test numbers on 8-D {tag} vs cardinality"),
        format!("Table {table_no_rt}: elapsed processor time (ms) on 8-D {tag} vs cardinality"),
        "Cardinality",
        workloads,
        None,
        scale.runs,
    );
    format!("{}\n{}", dt.render(), rt.render())
}

/// Table 1: skyline sizes of all synthetic datasets (both sweeps).
pub fn table1(scale: Scale) -> String {
    use std::fmt::Write as _;
    let algo = skyline_algos::bskytree::BSkyTreeP::default();
    let mut out = String::new();
    let n_fixed = scale.pick(10_000, 200_000);
    let _ = writeln!(out, "### Table 1: skyline size of synthetic datasets");
    let _ = writeln!(out, "-- dimensionality sweep at {n_fixed} points --");
    let _ = write!(out, "{:<14}", "Dimensionality");
    for d in DIM_SWEEP {
        let _ = write!(out, "{:>9}", format!("{d}-D"));
    }
    let _ = writeln!(out);
    for dist in [
        Distribution::AntiCorrelated,
        Distribution::Correlated,
        Distribution::Independent,
    ] {
        let _ = write!(out, "{:<14}", format!("{} datasets", dist.tag()));
        for d in DIM_SWEEP {
            let size = algo.compute(&dataset(dist, n_fixed, d)).len();
            let _ = write!(out, "{size:>9}");
        }
        let _ = writeln!(out);
    }
    let cards: Vec<usize> = if scale.full {
        (1..=10).map(|i| i * 100_000).collect()
    } else {
        (1..=5).map(|i| i * 10_000).collect()
    };
    let _ = writeln!(out, "-- cardinality sweep at 8-D --");
    let _ = write!(out, "{:<14}", "Cardinality");
    for &n in &cards {
        let _ = write!(out, "{:>9}", format!("{}K", n / 1000));
    }
    let _ = writeln!(out);
    for dist in [
        Distribution::AntiCorrelated,
        Distribution::Correlated,
        Distribution::Independent,
    ] {
        let _ = write!(out, "{:<14}", format!("{} datasets", dist.tag()));
        for &n in &cards {
            let size = algo.compute(&dataset(dist, n, 8)).len();
            let _ = write!(out, "{size:>9}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 2: distribution of points per subspace size after a *single*
/// pivot (the skyline point with minimal Euclidean distance to zero).
pub fn fig2(scale: Scale) -> String {
    subspace_histograms(scale, 1, usize::MAX, "Figure 2 (single pivot)")
}

/// Figure 6: the same distribution with the stability threshold σ = 3.
pub fn fig6(scale: Scale) -> String {
    subspace_histograms(scale, usize::MAX, 3, "Figure 6 (sigma = 3)")
}

fn subspace_histograms(scale: Scale, max_pivots: usize, sigma: usize, caption: &str) -> String {
    let n = scale.pick(20_000, 100_000);
    let d = 8;
    let mut out = String::new();
    for dist in [
        Distribution::AntiCorrelated,
        Distribution::Correlated,
        Distribution::Independent,
    ] {
        let data = dataset(dist, n, d);
        let mut metrics = Metrics::new();
        let config = MergeConfig {
            sigma: sigma.min(d),
            max_pivots: max_pivots.min(skyline_core::merge::DEFAULT_MAX_PIVOTS),
            score: PivotScore::Euclidean,
        };
        let outcome = merge(&data, &config, &mut metrics);
        let hist = outcome.size_histogram(d);
        out.push_str(&render_histogram(
            &format!(
                "{caption}: {} {n} points 8-D — {} pivot(s), {} survivors",
                dist.tag(),
                outcome.pivots.len(),
                outcome.survivors.len()
            ),
            &hist,
        ));
        out.push('\n');
    }
    out
}

/// Figures 4 and 5: mean DT / elapsed time of the boosted algorithms as a
/// function of the stability threshold σ ∈ [2, d].
pub fn fig4_fig5(scale: Scale) -> String {
    let n = scale.pick(20_000, 100_000);
    let d = 8;
    let mut out = String::new();
    for dist in [
        Distribution::AntiCorrelated,
        Distribution::Correlated,
        Distribution::Independent,
    ] {
        let data = dataset(dist, n, d);
        let columns: Vec<String> = (2..=d).map(|s| format!("σ={s}")).collect();
        let mut dt_rows: Vec<(String, Vec<f64>)> = Vec::new();
        let mut rt_rows: Vec<(String, Vec<f64>)> = Vec::new();
        type AlgoFactory = Box<dyn Fn(usize) -> Box<dyn SkylineAlgorithm>>;
        let algos: Vec<(&str, AlgoFactory)> = vec![
            (
                "SFS-Subset",
                Box::new(|s| Box::new(SfsSubset::new(Some(s)))),
            ),
            (
                "SaLSa-Subset",
                Box::new(|s| Box::new(SalsaSubset::new(Some(s)))),
            ),
            (
                "SDI-Subset",
                Box::new(|s| Box::new(SdiSubset::new(Some(s)))),
            ),
        ];
        for (name, make) in &algos {
            let mut dts = Vec::new();
            let mut rts = Vec::new();
            for sigma in 2..=d {
                let algo = make(sigma);
                let cell = measure(algo.as_ref(), &data, scale.runs);
                dts.push(cell.mean_dt);
                rts.push(cell.ms);
            }
            dt_rows.push((name.to_string(), dts));
            rt_rows.push((name.to_string(), rts));
        }
        let dt = Table {
            title: format!(
                "Figure 4: mean dominance tests vs stability threshold — {} {n} points 8-D",
                dist.tag()
            ),
            param_label: "Threshold".into(),
            columns: columns.clone(),
            rows: dt_rows,
        };
        let rt = Table {
            title: format!(
                "Figure 5: elapsed time (ms) vs stability threshold — {} {n} points 8-D",
                dist.tag()
            ),
            param_label: "Threshold".into(),
            columns,
            rows: rt_rows,
        };
        out.push_str(&dt.render());
        out.push('\n');
        out.push_str(&rt.render());
        out.push('\n');
    }
    out
}

/// Table 14: the large 4-D UI dataset (1M points in the paper).
pub fn table14(scale: Scale) -> String {
    let n = scale.pick(100_000, 1_000_000);
    let data = dataset(Distribution::Independent, n, 4);
    two_metric_table(
        &format!("Table 14: results on 4-D UI dataset with {n} points"),
        &data,
        None,
        scale.runs,
    )
}

/// Tables 15–17: the real-dataset stand-ins with the paper's manually
/// tuned σ.
pub fn real_table(which: usize, scale: Scale) -> String {
    let (name, data, sigma) = match which {
        15 => (
            "HOUSE' (6-D anti-correlated stand-in)",
            if scale.full {
                house()
            } else {
                house_scaled(20_000)
            },
            HOUSE_SIGMA,
        ),
        16 => (
            "NBA' (8-D mildly correlated stand-in)",
            if scale.full {
                nba()
            } else {
                nba_scaled(17_264)
            },
            NBA_SIGMA,
        ),
        17 => (
            "WEATHER' (15-D duplicate-heavy stand-in)",
            if scale.full {
                weather()
            } else {
                weather_scaled(30_000)
            },
            WEATHER_SIGMA,
        ),
        other => panic!("no real-dataset table {other}"),
    };
    two_metric_table(
        &format!(
            "Table {which}: the {name} dataset — {} points, sigma = {sigma}",
            data.len()
        ),
        &data,
        Some(sigma),
        scale.runs,
    )
}

/// A DT+RT two-column table over the whole evaluation suite on one
/// dataset (the layout of Tables 14–17).
fn two_metric_table(title: &str, data: &Dataset, sigma: Option<usize>, runs: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>10}",
        "Method", "DT", "RT (ms)", "skyline"
    );
    let suite = evaluation_suite(sigma);
    let mut prev: Option<(String, f64, f64)> = None;
    for algo in &suite {
        let cell = measure(algo.as_ref(), data, runs);
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>14} {:>10}",
            algo.name(),
            crate::harness::format_metric(cell.mean_dt),
            crate::harness::format_metric(cell.ms),
            cell.skyline
        );
        if let Some((base_name, base_dt, base_rt)) = prev.take() {
            if algo.name() == format!("{base_name}-Subset") {
                let gain = |base: f64, boosted: f64| -> String {
                    if boosted > 0.0 && base / boosted > 1.005 {
                        format!("x{:.2}", base / boosted)
                    } else {
                        "-".to_string()
                    }
                };
                let _ = writeln!(
                    out,
                    "{:<18} {:>14} {:>14}",
                    "Performance Gain",
                    gain(base_dt, cell.mean_dt),
                    gain(base_rt, cell.ms)
                );
            }
        }
        if !algo.name().ends_with("-Subset") {
            prev = Some((algo.name().to_string(), cell.mean_dt, cell.ms));
        }
    }
    out
}

/// All experiment ids accepted by [`run_experiment`], with one-line
/// descriptions.
pub fn experiment_index() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "fig2",
            "points per subspace size, single pivot (AC/CO/UI, 8-D)",
        ),
        (
            "fig4",
            "mean DT vs stability threshold σ (boosted algorithms, 8-D)",
        ),
        (
            "fig5",
            "elapsed time vs stability threshold σ (same runs as fig4)",
        ),
        ("fig6", "points per subspace size at σ = 3 (AC/CO/UI, 8-D)"),
        ("table1", "skyline sizes of all synthetic datasets"),
        (
            "table2",
            "DT on AC, dimensionality sweep (prints Table 3 too)",
        ),
        ("table3", "RT on AC, dimensionality sweep (alias of table2)"),
        ("table4", "DT on AC, cardinality sweep (prints Table 5 too)"),
        ("table5", "RT on AC, cardinality sweep (alias of table4)"),
        (
            "table6",
            "DT on CO, dimensionality sweep (prints Table 7 too)",
        ),
        ("table7", "RT on CO, dimensionality sweep (alias of table6)"),
        ("table8", "DT on CO, cardinality sweep (prints Table 9 too)"),
        ("table9", "RT on CO, cardinality sweep (alias of table8)"),
        (
            "table10",
            "DT on UI, dimensionality sweep (prints Table 11 too)",
        ),
        (
            "table11",
            "RT on UI, dimensionality sweep (alias of table10)",
        ),
        (
            "table12",
            "DT on UI, cardinality sweep (prints Table 13 too)",
        ),
        ("table13", "RT on UI, cardinality sweep (alias of table12)"),
        ("table14", "all methods on the large 4-D UI dataset"),
        ("table15", "the HOUSE' stand-in (σ = 4)"),
        ("table16", "the NBA' stand-in (σ = 2)"),
        ("table17", "the WEATHER' stand-in (σ = 3)"),
    ]
}

/// Run one experiment by id.
pub fn run_experiment(id: &str, scale: Scale) -> Result<String, String> {
    let out = match id {
        "fig2" => fig2(scale),
        "fig4" | "fig5" => fig4_fig5(scale),
        "fig6" => fig6(scale),
        "table1" => table1(scale),
        "table2" | "table3" => dim_sweep_tables(Distribution::AntiCorrelated, scale),
        "table4" | "table5" => card_sweep_tables(Distribution::AntiCorrelated, scale),
        "table6" | "table7" => dim_sweep_tables(Distribution::Correlated, scale),
        "table8" | "table9" => card_sweep_tables(Distribution::Correlated, scale),
        "table10" | "table11" => dim_sweep_tables(Distribution::Independent, scale),
        "table12" | "table13" => card_sweep_tables(Distribution::Independent, scale),
        "table14" => table14(scale),
        "table15" => real_table(15, scale),
        "table16" => real_table(16, scale),
        "table17" => real_table(17, scale),
        other => return Err(format!("unknown experiment id {other:?}")),
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            full: false,
            runs: 1,
        }
    }

    #[test]
    fn seeds_are_distinct_across_distributions() {
        let a = seed_for(Distribution::Independent, 100, 4);
        let b = seed_for(Distribution::Correlated, 100, 4);
        let c = seed_for(Distribution::AntiCorrelated, 100, 4);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn experiment_index_covers_every_table_and_figure() {
        let ids: Vec<&str> = experiment_index().iter().map(|(id, _)| *id).collect();
        for t in 1..=17 {
            assert!(
                ids.contains(&format!("table{t}").as_str()),
                "table{t} missing"
            );
        }
        for f in [2, 4, 5, 6] {
            assert!(ids.contains(&format!("fig{f}").as_str()), "fig{f} missing");
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        assert!(run_experiment("table99", tiny()).is_err());
    }

    #[test]
    fn two_metric_table_renders_gains() {
        let data = dataset(Distribution::Independent, 400, 4);
        let s = two_metric_table("demo", &data, Some(2), 1);
        assert!(s.contains("SFS-Subset"));
        assert!(s.contains("Performance Gain"));
        assert!(s.contains("BSkyTree-P"));
    }

    #[test]
    fn histograms_render_for_all_distributions() {
        // Use the internal helper with a tiny workload by calling merge
        // directly — fig2/fig6 at experiment scale is exercised by the
        // repro binary, not unit tests.
        let data = dataset(Distribution::Independent, 300, 8);
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 3,
                max_pivots: 1,
                score: PivotScore::default(),
            },
            &mut m,
        );
        let hist = out.size_histogram(8);
        assert_eq!(hist.iter().sum::<usize>(), out.survivors.len());
    }
}

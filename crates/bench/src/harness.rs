//! Shared measurement and table-formatting infrastructure for the
//! reproduction experiments.

use skyline_algos::SkylineAlgorithm;
use skyline_core::dataset::Dataset;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// `true` = the paper's exact workload sizes; `false` = laptop scale.
    pub full: bool,
    /// Number of timed repetitions per cell (the paper uses 10).
    pub runs: usize,
}

impl Scale {
    /// Quick laptop-scale configuration (single run per cell).
    pub fn quick() -> Self {
        Scale {
            full: false,
            runs: 1,
        }
    }

    /// The paper's configuration (full sizes, mean of 10 runs).
    pub fn full() -> Self {
        Scale {
            full: true,
            runs: 10,
        }
    }

    /// Pick between the scaled-down and the paper's value.
    pub fn pick(&self, quick: usize, full: usize) -> usize {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// One measured cell: the paper's two metrics plus the skyline size.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Mean dominance-test number (total dominance tests / cardinality).
    pub mean_dt: f64,
    /// Mean elapsed processor time in milliseconds.
    pub ms: f64,
    /// Skyline cardinality (identical across algorithms, used for checks).
    pub skyline: usize,
}

/// Run one algorithm `runs` times on `data` and average the metrics.
pub fn measure(algo: &dyn SkylineAlgorithm, data: &Dataset, runs: usize) -> Cell {
    let runs = runs.max(1);
    let mut dt = 0.0;
    let mut ms = 0.0;
    let mut skyline = 0usize;
    for _ in 0..runs {
        let r = algo.run(data);
        dt += r.mean_dominance_tests();
        ms += r.elapsed_ms();
        skyline = r.skyline.len();
    }
    Cell {
        mean_dt: dt / runs as f64,
        ms: ms / runs as f64,
        skyline,
    }
}

/// A metric matrix in the paper's layout: one row per method (with
/// interleaved "Performance Gain" rows), one column per workload
/// parameter.
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Label of the parameter row (e.g. "Dimensionality").
    pub param_label: String,
    /// Column headers (e.g. "2-D", "4-D", …).
    pub columns: Vec<String>,
    /// `(method name, values)` rows, in paper order.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Render in the paper's layout. Gain rows are inserted after each
    /// `<base>` / `<base>-Subset` pair, computed as base ÷ boosted and
    /// printed as `x N.NN`, or `-` when there is no gain (the paper's
    /// convention).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let width = 12usize;
        let name_width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.param_label.len(), "Performance Gain".len()])
            .max()
            .unwrap_or(16)
            + 2;
        let _ = write!(out, "{:<name_width$}", self.param_label);
        for c in &self.columns {
            let _ = write!(out, "{c:>width$}");
        }
        let _ = writeln!(out);
        let mut i = 0;
        while i < self.rows.len() {
            let (name, values) = &self.rows[i];
            let _ = write!(out, "{name:<name_width$}");
            for v in values {
                let _ = write!(out, "{:>width$}", format_metric(*v));
            }
            let _ = writeln!(out);
            // Insert the gain row when the next row is this row's -Subset
            // variant.
            if let Some((next_name, next_values)) = self.rows.get(i + 1) {
                if *next_name == format!("{name}-Subset") {
                    let _ = write!(out, "{next_name:<name_width$}");
                    for v in next_values {
                        let _ = write!(out, "{:>width$}", format_metric(*v));
                    }
                    let _ = writeln!(out);
                    let _ = write!(out, "{:<name_width$}", "Performance Gain");
                    for (base, boosted) in values.iter().zip(next_values) {
                        let gain = if *boosted > 0.0 {
                            base / boosted
                        } else {
                            f64::INFINITY
                        };
                        let cell = if gain > 1.005 {
                            if gain.is_finite() {
                                format!("x {gain:.2}")
                            } else {
                                "x inf".to_string()
                            }
                        } else {
                            "-".to_string()
                        };
                        let _ = write!(out, "{cell:>width$}");
                    }
                    let _ = writeln!(out);
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
        out
    }
}

/// Compact numeric formatting matching the paper's mixed precision.
pub fn format_metric(v: f64) -> String {
    if !v.is_finite() {
        "inf".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Render a subspace-size histogram (Figures 2 and 6) as an ASCII bar
/// chart plus exact counts.
pub fn render_histogram(title: &str, hist: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    for (size_minus_one, &count) in hist.iter().enumerate() {
        let bar = "#".repeat((count * 48).div_ceil(max).min(48));
        let _ = writeln!(out, "size {:>2}: {count:>8}  {bar}", size_minus_one + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_algos::bnl::Bnl;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::quick().pick(10, 100), 10);
        assert_eq!(Scale::full().pick(10, 100), 100);
        assert_eq!(Scale::full().runs, 10);
    }

    #[test]
    fn measure_averages_runs() {
        let data = Dataset::from_rows(&[[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]]).unwrap();
        let cell = measure(&Bnl, &data, 3);
        assert_eq!(cell.skyline, 2);
        assert!(cell.mean_dt > 0.0);
        assert!(cell.ms >= 0.0);
    }

    #[test]
    fn table_renders_gain_rows() {
        let t = Table {
            title: "demo".into(),
            param_label: "Dimensionality".into(),
            columns: vec!["2-D".into(), "4-D".into()],
            rows: vec![
                ("SFS".into(), vec![10.0, 100.0]),
                ("SFS-Subset".into(), vec![10.0, 20.0]),
                ("BSkyTree-P".into(), vec![3.0, 4.0]),
            ],
        };
        let s = t.render();
        assert!(s.contains("Performance Gain"));
        assert!(s.contains("x 5.00"), "expected a x5 gain cell:\n{s}");
        assert!(s.contains('-'), "no-gain cells print a dash");
        assert!(s.contains("BSkyTree-P"));
    }

    #[test]
    fn metric_formatting_bands() {
        assert_eq!(format_metric(0.0), "0");
        assert_eq!(format_metric(0.12345678), "0.12346");
        assert_eq!(format_metric(5.5), "5.500");
        assert_eq!(format_metric(123.456), "123.5");
        assert_eq!(format_metric(54321.0), "54321");
    }

    #[test]
    fn histogram_rendering() {
        let s = render_histogram("demo", &[5, 0, 10]);
        assert!(s.contains("size  1:        5"));
        assert!(s.contains("size  3:       10"));
    }
}

//! Machine-readable benchmark artefacts (`BENCH_*.json`).
//!
//! Each PR in the repository's history leaves one `BENCH_<PR>.json` at
//! the repo root: the evaluation suite measured on a fixed reference
//! workload, one record per algorithm with the paper's two metrics
//! (mean dominance tests, milliseconds) plus the skyline size. The
//! sequence of artefacts is the performance trajectory of the codebase.

use std::fmt::Write as _;
use std::path::Path;

use skyline_algos::{evaluation_suite, parallel_suite, SkylineAlgorithm};
use skyline_data::{Distribution, SyntheticSpec};
use skyline_obs::json::ObjectWriter;

use crate::harness::measure;

/// Worker count the artefact's `P-*` rows use when the caller passes 0:
/// one per available CPU, but at least two so the partition-merge path
/// (shard + cross-shard merge) is actually exercised on small machines.
pub fn default_bench_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(2)
}

/// The reference workload every `BENCH_*.json` is measured on: the
/// paper's hard case (anti-correlated) at laptop scale.
pub fn reference_workload() -> SyntheticSpec {
    SyntheticSpec {
        distribution: Distribution::AntiCorrelated,
        cardinality: 5_000,
        dims: 6,
        seed: 42,
    }
}

/// Measure the evaluation suite plus the parallel engines on `spec` and
/// serialise the result as a `BENCH_*.json` document (one algorithm per
/// line). `threads == 0` picks [`default_bench_threads`]; the worker
/// count of the `P-*` rows is recorded in the workload header.
pub fn bench_artifact_json(
    label: &str,
    spec: &SyntheticSpec,
    runs: usize,
    threads: usize,
) -> String {
    let threads = if threads == 0 {
        default_bench_threads()
    } else {
        threads
    };
    let data = spec.generate();
    let mut suite: Vec<Box<dyn SkylineAlgorithm>> = evaluation_suite(None);
    suite.extend(parallel_suite(None, threads));
    let mut algos = String::from("[");
    for (i, algo) in suite.iter().enumerate() {
        let cell = measure(algo.as_ref(), &data, runs);
        let mut w = ObjectWriter::new();
        w.str_field("algorithm", algo.name())
            .f64_field("mean_dt", cell.mean_dt)
            .f64_field("ms", cell.ms)
            .u64_field("skyline", cell.skyline as u64);
        let _ = write!(algos, "{}{}", if i == 0 { "" } else { "," }, w.finish());
    }
    algos.push(']');

    let mut workload = ObjectWriter::new();
    workload
        .str_field("distribution", spec.distribution.tag())
        .u64_field("cardinality", spec.cardinality as u64)
        .u64_field("dims", spec.dims as u64)
        .u64_field("seed", spec.seed)
        .u64_field("runs", runs.max(1) as u64)
        .u64_field("threads", threads as u64);

    let mut doc = ObjectWriter::new();
    doc.str_field("artifact", label)
        .raw_field("workload", &workload.finish())
        .raw_field("algorithms", &algos);
    let mut out = doc.finish();
    out.push('\n');
    out
}

/// Write a `BENCH_*.json` artefact to `path`.
pub fn write_bench_artifact(
    path: &Path,
    label: &str,
    spec: &SyntheticSpec,
    runs: usize,
    threads: usize,
) -> std::io::Result<()> {
    std::fs::write(path, bench_artifact_json(label, spec, runs, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_obs::json::Value;

    #[test]
    fn artifact_is_valid_json_with_all_algorithms() {
        let spec = SyntheticSpec {
            distribution: Distribution::Independent,
            cardinality: 200,
            dims: 4,
            seed: 7,
        };
        let doc = bench_artifact_json("BENCH_TEST", &spec, 1, 2);
        let v = Value::parse(doc.trim()).expect("artifact parses");
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("BENCH_TEST"));
        let w = v.get("workload").unwrap();
        assert_eq!(w.get("cardinality").unwrap().as_u64(), Some(200));
        assert_eq!(w.get("distribution").unwrap().as_str(), Some("UI"));
        assert_eq!(w.get("threads").unwrap().as_u64(), Some(2));
        let algos = v.get("algorithms").unwrap().as_arr().unwrap();
        assert_eq!(
            algos.len(),
            evaluation_suite(None).len() + parallel_suite(None, 2).len()
        );
        // The parallel rows sit next to their sequential counterparts.
        let names: Vec<&str> = algos
            .iter()
            .map(|a| a.get("algorithm").unwrap().as_str().unwrap())
            .collect();
        for p in ["P-SFS", "P-SFS-Subset", "P-SaLSa-Subset", "P-SDI-Subset"] {
            assert!(names.contains(&p), "{p} missing from {names:?}");
        }
        // Every algorithm computes the same skyline.
        let sizes: Vec<u64> = algos
            .iter()
            .map(|a| a.get("skyline").unwrap().as_u64().unwrap())
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "skyline sizes differ: {sizes:?}"
        );
        assert!(algos
            .iter()
            .all(|a| a.get("mean_dt").unwrap().as_f64().unwrap() > 0.0));
    }
}

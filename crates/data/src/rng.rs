//! Small in-tree deterministic PRNG.
//!
//! The workspace must build and test with **no network access**, so the
//! external `rand` / `rand_chacha` crates are replaced by this module: a
//! [xoshiro256++](https://prng.di.unimi.it/) generator seeded through
//! SplitMix64, exactly as recommended by its authors. The generator is
//! not cryptographic — it exists to produce high-quality, reproducible
//! benchmark data (the correlation-structure tests in
//! [`crate::synthetic`] double as a sanity check of its uniformity).
//!
//! Everything is deterministic given a seed; all dataset generators in
//! this crate derive their streams from [`Rng64::seed_from_u64`], which
//! mixes the seed so that consecutive seeds yield unrelated streams.

/// xoshiro256++ pseudo-random generator, seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: [u64; 4],
}

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// 256-bit xoshiro state (and a decent tiny generator in its own right).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Deterministic construction from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng64 { state }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone keeps the mapping exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_below((hi - lo) as u64) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        let mut c = Rng64::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reference_vector_matches_xoshiro256pp() {
        // State {1, 2, 3, 4} — first outputs of the reference C
        // implementation (prng.di.unimi.it/xoshiro256plusplus.c).
        let mut rng = Rng64 {
            state: [1, 2, 3, 4],
        };
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                41943041,
                58720359,
                3588806011781223,
                3591011842654386,
                9228616714210784205
            ]
        );
    }

    #[test]
    fn f64_stays_in_unit_interval_and_fills_it() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..5000 {
            let v = rng.gen_range_f64(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&v));
            let u = rng.gen_range_usize(3, 17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}

//! # skyline-data
//!
//! Benchmark data for the skyline-subset workspace:
//!
//! - [`synthetic`] — a re-implementation of the classic *Skyline Benchmark
//!   Data Generator* (Börzsönyi et al., ICDE 2001): anti-correlated (AC),
//!   correlated (CO) and uniform-independent (UI) point sets, seeded and
//!   deterministic;
//! - [`real`] — seeded stand-ins for the paper's HOUSE / NBA / WEATHER
//!   real-world datasets (see module docs for the substitution rationale);
//! - [`io`] — dependency-free CSV import/export;
//! - [`stats`] — dataset statistics used to validate generator character;
//! - [`rng`] — the in-tree deterministic PRNG (xoshiro256++) every
//!   generator draws from, keeping the workspace free of network
//!   dependencies.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;
pub mod real;
pub mod rng;
pub mod stats;
pub mod synthetic;

pub use synthetic::{
    anti_correlated, correlated, generate, uniform_independent, Distribution, SyntheticSpec,
};

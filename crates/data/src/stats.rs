//! Dataset statistics: correlation structure, value cardinality, extrema.
//!
//! Used by tests to verify generator character (CO really correlates, AC
//! really anti-correlates, WEATHER′ really has duplicate-heavy dimensions)
//! and by the reproduction harness to describe workloads.

use skyline_core::dataset::Dataset;

/// Pearson correlation coefficient between two dimensions.
///
/// Returns 0.0 when either dimension is constant (undefined correlation).
pub fn pearson(data: &Dataset, dim_a: usize, dim_b: usize) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let (mut sum_a, mut sum_b) = (0.0, 0.0);
    for (_, p) in data.iter() {
        sum_a += p[dim_a];
        sum_b += p[dim_b];
    }
    let (mean_a, mean_b) = (sum_a / n as f64, sum_b / n as f64);
    let (mut cov, mut var_a, mut var_b) = (0.0, 0.0, 0.0);
    for (_, p) in data.iter() {
        let (da, db) = (p[dim_a] - mean_a, p[dim_b] - mean_b);
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Mean Pearson correlation over all dimension pairs — a one-number
/// summary of whether a dataset is CO- (positive), AC- (negative) or
/// UI-like (near zero).
pub fn mean_pairwise_correlation(data: &Dataset) -> f64 {
    let d = data.dims();
    if d < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..d {
        for b in (a + 1)..d {
            total += pearson(data, a, b);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Number of distinct values in one dimension.
///
/// Exact-bits comparison; meant for quantised (duplicate-heavy) data where
/// equality is intentional.
pub fn distinct_values(data: &Dataset, dim: usize) -> usize {
    let mut values: Vec<u64> = data.iter().map(|(_, p)| p[dim].to_bits()).collect();
    values.sort_unstable();
    values.dedup();
    values.len()
}

/// Per-dimension `(min, max)` ranges.
pub fn ranges(data: &Dataset) -> Vec<(f64, f64)> {
    let d = data.dims();
    let mut out = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
    for (_, p) in data.iter() {
        for (r, v) in out.iter_mut().zip(p) {
            r.0 = r.0.min(*v);
            r.1 = r.1.max(*v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let ds = Dataset::from_rows(&[[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]]).unwrap();
        assert!((pearson(&ds, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let ds = Dataset::from_rows(&[[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]]).unwrap();
        assert!((pearson(&ds, 0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_dimension_is_zero() {
        let ds = Dataset::from_rows(&[[1.0, 5.0], [2.0, 5.0]]).unwrap();
        assert_eq!(pearson(&ds, 0, 1), 0.0);
    }

    #[test]
    fn pearson_tiny_dataset_is_zero() {
        let ds = Dataset::from_rows(&[[1.0, 5.0]]).unwrap();
        assert_eq!(pearson(&ds, 0, 1), 0.0);
    }

    #[test]
    fn mean_pairwise_on_one_dim_is_zero() {
        let ds = Dataset::from_rows(&[[1.0], [2.0]]).unwrap();
        assert_eq!(mean_pairwise_correlation(&ds), 0.0);
    }

    #[test]
    fn distinct_value_counting() {
        let ds = Dataset::from_rows(&[[1.0, 0.5], [1.0, 0.7], [2.0, 0.5]]).unwrap();
        assert_eq!(distinct_values(&ds, 0), 2);
        assert_eq!(distinct_values(&ds, 1), 2);
    }

    #[test]
    fn range_computation() {
        let ds = Dataset::from_rows(&[[1.0, -2.0], [3.0, 5.0]]).unwrap();
        assert_eq!(ranges(&ds), vec![(1.0, 3.0), (-2.0, 5.0)]);
    }
}

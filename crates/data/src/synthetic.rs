//! Synthetic skyline benchmark data.
//!
//! Re-implementation of the three canonical distributions of the *Skyline
//! Benchmark Data Generator* (`randdataset`, originally distributed via
//! pgfoundry and specified in the appendix of Börzsönyi, Kossmann &
//! Stocker, *The Skyline Operator*, ICDE 2001), which the paper uses for
//! every synthetic experiment:
//!
//! - **UI** (*uniform independent*): every coordinate iid uniform `[0,1)`.
//! - **CO** (*correlated*): a diagonal position `v` is drawn from a peaked
//!   (Irwin–Hall) distribution, every coordinate starts at `v`, and small
//!   normally distributed, sum-preserving pairwise perturbations are
//!   applied — points hug the main diagonal, the skyline is tiny.
//! - **AC** (*anti-correlated*): the plane position `v` is drawn from a
//!   normal-like distribution centred at `0.5`, and wide *uniform*
//!   sum-preserving perturbations spread points across the hyperplane
//!   `Σxᵢ ≈ d·v` — being good in one dimension means being bad in another,
//!   the skyline is huge.
//!
//! Out-of-range candidate points are rejected and redrawn, exactly like the
//! original generator. All generation is deterministic given a seed
//! (the in-tree xoshiro256++ of [`crate::rng`]), which the reproduction
//! harness relies on.

use crate::rng::Rng64;
use skyline_core::dataset::Dataset;

/// The three canonical data types of the skyline literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Uniform independent (`UI`).
    Independent,
    /// Correlated (`CO`).
    Correlated,
    /// Anti-correlated (`AC`).
    AntiCorrelated,
}

impl Distribution {
    /// The two-letter tag used in the paper's tables.
    pub fn tag(self) -> &'static str {
        match self {
            Distribution::Independent => "UI",
            Distribution::Correlated => "CO",
            Distribution::AntiCorrelated => "AC",
        }
    }

    /// Parse the paper's two-letter tag (case-insensitive).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag.to_ascii_uppercase().as_str() {
            "UI" => Some(Distribution::Independent),
            "CO" => Some(Distribution::Correlated),
            "AC" => Some(Distribution::AntiCorrelated),
            _ => None,
        }
    }
}

/// Parameters of one synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyntheticSpec {
    /// Which distribution to draw from.
    pub distribution: Distribution,
    /// Number of points `N`.
    pub cardinality: usize,
    /// Dimensionality `d`.
    pub dims: usize,
    /// RNG seed; the same spec always yields the same dataset.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Generate the dataset described by this spec.
    pub fn generate(&self) -> Dataset {
        generate(self)
    }
}

/// Sum of `steps` uniform draws over `[min, max)`, normalised back into
/// `[min, max)` — the original generator's `random_peak`, an Irwin–Hall
/// approximation of a normal distribution peaked at the interval midpoint.
fn random_peak(rng: &mut Rng64, min: f64, max: f64, steps: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..steps {
        acc += rng.gen_f64();
    }
    min + (max - min) * acc / steps as f64
}

/// The original generator's `random_normal`: a 12-step peak around `med`.
fn random_normal(rng: &mut Rng64, med: f64, var: f64) -> f64 {
    random_peak(rng, med - var, med + var, 12)
}

fn point_in_unit_cube(p: &[f64]) -> bool {
    p.iter().all(|v| (0.0..=1.0).contains(v))
}

/// One correlated candidate point (may land outside the unit cube).
fn correlated_candidate(rng: &mut Rng64, dims: usize, out: &mut [f64]) {
    let v = random_peak(rng, 0.0, 1.0, dims.max(2));
    let l = if v <= 0.5 { v } else { 1.0 - v };
    out.fill(v);
    for d in 0..dims {
        let h = random_normal(rng, 0.0, l);
        out[d] += h;
        out[(d + 1) % dims] -= h;
    }
}

/// One anti-correlated candidate point (may land outside the unit cube).
fn anti_correlated_candidate(rng: &mut Rng64, dims: usize, out: &mut [f64]) {
    let v = random_normal(rng, 0.5, 0.25);
    let l = if v <= 0.5 { v } else { 1.0 - v };
    out.fill(v);
    for d in 0..dims {
        let h = rng.gen_range_f64(-l, l);
        out[d] += h;
        out[(d + 1) % dims] -= h;
    }
}

/// Generate a synthetic dataset.
///
/// # Panics
///
/// Panics if `dims` is 0 or exceeds [`skyline_core::subspace::MAX_DIMS`]
/// (the resulting buffer would fail dataset validation anyway).
pub fn generate(spec: &SyntheticSpec) -> Dataset {
    assert!(spec.dims >= 1, "dimensionality must be at least 1");
    let mut rng = Rng64::seed_from_u64(spec.seed);
    let mut values = Vec::with_capacity(spec.cardinality * spec.dims);
    let mut row = vec![0.0f64; spec.dims];
    for _ in 0..spec.cardinality {
        match spec.distribution {
            Distribution::Independent => {
                for v in row.iter_mut() {
                    *v = rng.gen_f64();
                }
            }
            Distribution::Correlated => loop {
                correlated_candidate(&mut rng, spec.dims, &mut row);
                if point_in_unit_cube(&row) {
                    break;
                }
            },
            Distribution::AntiCorrelated => loop {
                anti_correlated_candidate(&mut rng, spec.dims, &mut row);
                if point_in_unit_cube(&row) {
                    break;
                }
            },
        }
        values.extend_from_slice(&row);
    }
    Dataset::from_flat(values, spec.dims).expect("generator output is always valid")
}

/// Shorthand: uniform-independent dataset.
pub fn uniform_independent(cardinality: usize, dims: usize, seed: u64) -> Dataset {
    generate(&SyntheticSpec {
        distribution: Distribution::Independent,
        cardinality,
        dims,
        seed,
    })
}

/// Shorthand: correlated dataset.
pub fn correlated(cardinality: usize, dims: usize, seed: u64) -> Dataset {
    generate(&SyntheticSpec {
        distribution: Distribution::Correlated,
        cardinality,
        dims,
        seed,
    })
}

/// Shorthand: anti-correlated dataset.
pub fn anti_correlated(cardinality: usize, dims: usize, seed: u64) -> Dataset {
    generate(&SyntheticSpec {
        distribution: Distribution::AntiCorrelated,
        cardinality,
        dims,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean_pairwise_correlation;

    #[test]
    fn deterministic_by_seed() {
        let a = uniform_independent(100, 4, 7);
        let b = uniform_independent(100, 4, 7);
        let c = uniform_independent(100, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_correct() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let ds = generate(&SyntheticSpec {
                distribution: dist,
                cardinality: 200,
                dims: 6,
                seed: 1,
            });
            assert_eq!(ds.len(), 200, "{dist:?}");
            assert_eq!(ds.dims(), 6);
        }
    }

    #[test]
    fn values_in_unit_cube() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let ds = generate(&SyntheticSpec {
                distribution: dist,
                cardinality: 500,
                dims: 8,
                seed: 3,
            });
            assert!(
                ds.as_flat().iter().all(|v| (0.0..=1.0).contains(v)),
                "{dist:?} escaped the unit cube"
            );
        }
    }

    #[test]
    fn correlation_signs_match_the_names() {
        let co = correlated(2000, 4, 11);
        let ac = anti_correlated(2000, 4, 11);
        let ui = uniform_independent(2000, 4, 11);
        let r_co = mean_pairwise_correlation(&co);
        let r_ac = mean_pairwise_correlation(&ac);
        let r_ui = mean_pairwise_correlation(&ui);
        assert!(
            r_co > 0.5,
            "correlated data should correlate strongly, got {r_co}"
        );
        assert!(
            r_ac < -0.1,
            "anti-correlated data should anti-correlate, got {r_ac}"
        );
        assert!(
            r_ui.abs() < 0.1,
            "independent data should not correlate, got {r_ui}"
        );
    }

    #[test]
    fn tags_roundtrip() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            assert_eq!(Distribution::from_tag(dist.tag()), Some(dist));
        }
        assert_eq!(
            Distribution::from_tag("ui"),
            Some(Distribution::Independent)
        );
        assert_eq!(Distribution::from_tag("xx"), None);
    }

    #[test]
    fn one_dimensional_generation_works() {
        // d = 1 degenerates gracefully (pairwise perturbations cancel).
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let ds = generate(&SyntheticSpec {
                distribution: dist,
                cardinality: 50,
                dims: 1,
                seed: 5,
            });
            assert_eq!(ds.len(), 50);
        }
    }

    #[test]
    fn high_dimensional_anti_correlated_terminates() {
        // The rejection loop must stay practical at the paper's largest
        // dimensionality.
        let ds = anti_correlated(200, 24, 9);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dims(), 24);
    }

    #[test]
    fn spec_generate_matches_free_function() {
        let spec = SyntheticSpec {
            distribution: Distribution::Correlated,
            cardinality: 64,
            dims: 3,
            seed: 21,
        };
        assert_eq!(spec.generate(), correlated(64, 3, 21));
    }
}

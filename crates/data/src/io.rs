//! CSV import/export for datasets.
//!
//! Minimal, dependency-free CSV: comma-separated numeric columns, one
//! point per line, optional header line. This is the interchange format of
//! the `skyline` CLI and of the original `randdataset` tool.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use skyline_core::dataset::Dataset;

/// Errors raised by CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A cell failed to parse as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// The offending cell content.
        content: String,
    },
    /// A line has the wrong number of columns.
    ColumnCount {
        /// 1-based line number.
        line: usize,
        /// Columns found on this line.
        got: usize,
        /// Columns established by the first data line.
        expected: usize,
    },
    /// The file contains no data rows.
    Empty,
    /// The parsed values failed dataset validation (NaN, shape).
    Invalid(skyline_core::error::Error),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse {
                line,
                column,
                content,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {content:?} as a number"
                )
            }
            CsvError::ColumnCount {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: found {got} columns, expected {expected}")
            }
            CsvError::Empty => write!(f, "no data rows found"),
            CsvError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Read a dataset from CSV text.
///
/// If the first line contains any cell that does not parse as a number it
/// is treated as a header and skipped. Empty lines are ignored.
pub fn read_csv<R: Read>(reader: R) -> Result<Dataset, CsvError> {
    let reader = BufReader::new(reader);
    let mut values: Vec<f64> = Vec::new();
    let mut dims: Option<usize> = None;
    let mut data_lines = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, (usize, &str)> = cells
            .iter()
            .enumerate()
            .map(|(c, cell)| cell.parse::<f64>().map_err(|_| (c + 1, *cell)))
            .collect();
        match parsed {
            Err((column, content)) => {
                // A non-numeric first data line is a header; anywhere else
                // it is an error.
                if data_lines == 0 && dims.is_none() {
                    continue;
                }
                return Err(CsvError::Parse {
                    line: line_no,
                    column,
                    content: content.to_string(),
                });
            }
            Ok(row) => {
                match dims {
                    None => dims = Some(row.len()),
                    Some(d) if d != row.len() => {
                        return Err(CsvError::ColumnCount {
                            line: line_no,
                            got: row.len(),
                            expected: d,
                        });
                    }
                    Some(_) => {}
                }
                values.extend_from_slice(&row);
                data_lines += 1;
            }
        }
    }
    let dims = dims.ok_or(CsvError::Empty)?;
    Dataset::from_flat(values, dims).map_err(CsvError::Invalid)
}

/// Read a dataset from a CSV file.
pub fn read_csv_file<P: AsRef<Path>>(path: P) -> Result<Dataset, CsvError> {
    read_csv(File::open(path)?)
}

/// Write a dataset as CSV (no header, full `f64` round-trip precision).
pub fn write_csv<W: Write>(writer: W, data: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (_, point) in data.iter() {
        for (i, v) in point.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            // `{:?}` on f64 produces the shortest representation that
            // round-trips exactly.
            write!(w, "{v:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Write a dataset to a CSV file.
pub fn write_csv_file<P: AsRef<Path>>(path: P, data: &Dataset) -> io::Result<()> {
    write_csv(File::create(path)?, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let ds = crate::synthetic::uniform_independent(50, 3, 77);
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn header_is_skipped() {
        let csv = "price,distance\n1.0,2.0\n3.0,4.0\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0]);
    }

    #[test]
    fn no_header_works() {
        let csv = "1.0,2.0\n3.0,4.0\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn blank_lines_ignored() {
        let csv = "\n1.0,2.0\n\n3.0,4.0\n\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn whitespace_tolerated() {
        let csv = " 1.0 , 2.0 \n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.point(0), &[1.0, 2.0]);
    }

    #[test]
    fn ragged_line_rejected() {
        let csv = "1.0,2.0\n3.0\n";
        match read_csv(csv.as_bytes()) {
            Err(CsvError::ColumnCount {
                line: 2,
                got: 1,
                expected: 2,
            }) => {}
            other => panic!("expected ColumnCount, got {other:?}"),
        }
    }

    #[test]
    fn non_numeric_cell_mid_file_rejected() {
        let csv = "1.0,2.0\nfoo,4.0\n";
        match read_csv(csv.as_bytes()) {
            Err(CsvError::Parse {
                line: 2,
                column: 1,
                content,
            }) => {
                assert_eq!(content, "foo");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        match read_csv("".as_bytes()) {
            Err(CsvError::Empty) => {}
            other => panic!("expected Empty, got {other:?}"),
        }
        // Header-only counts as empty too.
        match read_csv("a,b\n".as_bytes()) {
            Err(CsvError::Empty) => {}
            other => panic!("expected Empty, got {other:?}"),
        }
    }

    #[test]
    fn nan_rejected() {
        let csv = "1.0,NaN\n";
        match read_csv(csv.as_bytes()) {
            Err(CsvError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("skyline-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let ds = crate::synthetic::correlated(20, 4, 3);
        write_csv_file(&path, &ds).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        let e = CsvError::ColumnCount {
            line: 3,
            got: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("line 3"));
    }
}

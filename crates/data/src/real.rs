//! Stand-ins for the paper's three real-world datasets (Section 6.3).
//!
//! The originals — HOUSE, NBA and WEATHER, as prepared by Chester et al.
//! (ICDE 2015) — are not redistributable here, so each is replaced by a
//! seeded synthetic stand-in with identical cardinality and dimensionality
//! and with the one structural property Section 6.3's analysis attributes
//! to it:
//!
//! | Paper dataset | `d` | `N` | Property preserved | Stand-in |
//! |---|---|---|---|---|
//! | HOUSE | 6 | 127,931 | "an AC type dataset" | anti-correlated draw |
//! | NBA | 8 | 17,264 | small, mildly correlated sports stats | positively correlated blend with heavy independent noise |
//! | WEATHER | 15 | 566,268 | "a large number of duplicate values in several dimensions" | independent draw with per-dimension quantisation to low-cardinality grids |
//!
//! The substitution table also lives in `DESIGN.md`. Absolute DT/RT values
//! will differ from the paper's Tables 15–17; the qualitative behaviour
//! (which methods benefit, where the index I/O overhead shows) is what the
//! stand-ins reproduce.

use skyline_core::dataset::Dataset;

use crate::rng::Rng64;

use crate::synthetic::anti_correlated;

/// Cardinality/dimensionality of the paper's HOUSE dataset.
pub const HOUSE_SHAPE: (usize, usize) = (127_931, 6);
/// Cardinality/dimensionality of the paper's NBA dataset.
pub const NBA_SHAPE: (usize, usize) = (17_264, 8);
/// Cardinality/dimensionality of the paper's WEATHER dataset.
pub const WEATHER_SHAPE: (usize, usize) = (566_268, 15);

/// The stability thresholds the paper manually tuned per dataset
/// (Tables 15, 16, 17): HOUSE 4, NBA 2, WEATHER 3.
pub const HOUSE_SIGMA: usize = 4;
/// See [`HOUSE_SIGMA`].
pub const NBA_SIGMA: usize = 2;
/// See [`HOUSE_SIGMA`].
pub const WEATHER_SIGMA: usize = 3;

/// HOUSE′: anti-correlated stand-in, full paper size.
pub fn house() -> Dataset {
    house_scaled(HOUSE_SHAPE.0)
}

/// HOUSE′ at a reduced cardinality (same character), for quick runs.
pub fn house_scaled(cardinality: usize) -> Dataset {
    anti_correlated(cardinality, HOUSE_SHAPE.1, 0x484F_5553_4531) // "HOUSE1"
}

/// NBA′: positively correlated blend with strong independent noise —
/// "good players are good at most stats, but not deterministically".
pub fn nba() -> Dataset {
    nba_scaled(NBA_SHAPE.0)
}

/// NBA′ at a reduced cardinality (same character).
pub fn nba_scaled(cardinality: usize) -> Dataset {
    let dims = NBA_SHAPE.1;
    let mut rng = Rng64::seed_from_u64(0x4E42_4131); // "NBA1"
    let mut values = Vec::with_capacity(cardinality * dims);
    for _ in 0..cardinality {
        // Latent player quality; costs are minimised so smaller = better.
        let quality: f64 = rng.gen_f64();
        for _ in 0..dims {
            let noise: f64 = rng.gen_f64();
            values.push(0.55 * quality + 0.45 * noise);
        }
    }
    Dataset::from_flat(values, dims).expect("generator output is always valid")
}

/// WEATHER′: independent draw quantised to low-cardinality per-dimension
/// grids, producing the duplicate-heavy dimensions the paper analyses
/// ("there may be a lot of skyline points in one single node of our
/// proposed skyline index").
pub fn weather() -> Dataset {
    weather_scaled(WEATHER_SHAPE.0)
}

/// WEATHER′ at a reduced cardinality (same character).
pub fn weather_scaled(cardinality: usize) -> Dataset {
    let dims = WEATHER_SHAPE.1;
    let mut rng = Rng64::seed_from_u64(0x5745_4154_4845_5231); // "WEATHER1"
                                                               // Grid sizes per dimension: several very coarse (duplicate-heavy)
                                                               // dimensions, some moderately fine ones — mimicking a mixture of
                                                               // categorical-ish (wind direction, cloud octas) and near-continuous
                                                               // (temperature) measurements.
    let grid: Vec<u32> = (0..dims)
        .map(|d| match d % 5 {
            0 => 8,    // very coarse
            1 => 16,   // coarse
            2 => 50,   // medium
            3 => 200,  // fine
            _ => 1000, // near-continuous
        })
        .collect();
    let mut values = Vec::with_capacity(cardinality * dims);
    for _ in 0..cardinality {
        for &g in &grid {
            let raw: f64 = rng.gen_f64();
            values.push((raw * g as f64).floor() / g as f64);
        }
    }
    Dataset::from_flat(values, dims).expect("generator output is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{distinct_values, mean_pairwise_correlation};

    #[test]
    fn house_character_is_anti_correlated() {
        let ds = house_scaled(3000);
        assert_eq!(ds.dims(), HOUSE_SHAPE.1);
        assert_eq!(ds.len(), 3000);
        assert!(mean_pairwise_correlation(&ds) < -0.05);
    }

    #[test]
    fn nba_character_is_mildly_correlated() {
        let ds = nba_scaled(3000);
        assert_eq!(ds.dims(), NBA_SHAPE.1);
        let r = mean_pairwise_correlation(&ds);
        assert!(
            r > 0.2 && r < 0.9,
            "mild positive correlation expected, got {r}"
        );
    }

    #[test]
    fn weather_character_is_duplicate_heavy() {
        let ds = weather_scaled(5000);
        assert_eq!(ds.dims(), WEATHER_SHAPE.1);
        // The coarse dimensions must have far fewer distinct values than
        // points.
        assert!(distinct_values(&ds, 0) <= 8);
        assert!(distinct_values(&ds, 1) <= 16);
        // And the fine dimensions must look near-continuous.
        assert!(distinct_values(&ds, 4) > 500);
    }

    #[test]
    fn stand_ins_are_deterministic() {
        assert_eq!(nba_scaled(100), nba_scaled(100));
        assert_eq!(weather_scaled(100), weather_scaled(100));
        assert_eq!(house_scaled(100), house_scaled(100));
    }

    #[test]
    fn full_shapes_match_the_paper() {
        // Shape constants only — generating the full sets here would slow
        // the suite; the repro harness exercises the full sizes.
        assert_eq!(HOUSE_SHAPE, (127_931, 6));
        assert_eq!(NBA_SHAPE, (17_264, 8));
        assert_eq!(WEATHER_SHAPE, (566_268, 15));
    }
}

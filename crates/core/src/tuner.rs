//! Sample-based tuning of the stability threshold σ — the paper's
//! future-work item (2) in Section 7 ("developing a cost model to improve
//! the stability threshold in order to find the best number of pivot
//! points"), implementing the practical suggestion already given in
//! Section 4: "for large datasets, the stability threshold can be tested
//! from a random sample of the dataset".
//!
//! The tuner draws a deterministic strided sample (no RNG dependency, and
//! a stride visits the whole value range of any input ordering), runs the
//! boosted pipeline on the sample for every candidate σ, and scores each
//! candidate with a cost model over the measured counters:
//!
//! ```text
//! cost(σ) = dominance_tests + node_cost · index_nodes_visited
//! ```
//!
//! Dominance tests are `O(d)` and trie-node visits `O(1)`, so
//! `node_cost` defaults to `1/d` — this is what makes the tuner prefer a
//! small σ on correlated data (where extra pivots buy nothing) and a
//! moderate σ on anti-correlated data (where they spread the index).

use crate::boost::{boosted_skyline, BoostConfig, SortStrategy};
use crate::dataset::Dataset;
use crate::merge::{MergeConfig, PivotScore};
use crate::metrics::Metrics;

/// Configuration of the σ tuner.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Sample size drawn from the dataset (strided). Clamped to the
    /// dataset size.
    pub sample_size: usize,
    /// Scan order used during trial runs (should match the algorithm the
    /// tuned σ will be used with).
    pub sort: SortStrategy,
    /// Whether trial runs use the stop-point rule.
    pub use_stop_point: bool,
    /// Relative cost of one trie-node visit versus one dominance test;
    /// `None` = `1/d`.
    pub node_cost: Option<f64>,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            sample_size: 2_000,
            sort: SortStrategy::Sum,
            use_stop_point: false,
            node_cost: None,
        }
    }
}

/// One trial of the tuner.
#[derive(Debug, Clone)]
pub struct TunerTrial {
    /// The candidate threshold.
    pub sigma: usize,
    /// Modelled cost (lower is better).
    pub cost: f64,
    /// Dominance tests measured on the sample.
    pub dominance_tests: u64,
    /// Trie nodes visited on the sample.
    pub nodes_visited: u64,
    /// Pivots the merge phase used.
    pub pivots: usize,
}

/// Outcome of [`tune_sigma`].
#[derive(Debug, Clone)]
pub struct TunerReport {
    /// The winning threshold.
    pub sigma: usize,
    /// All evaluated candidates, ascending by σ.
    pub trials: Vec<TunerTrial>,
    /// Sample size actually used.
    pub sample_size: usize,
}

/// Pick the best stability threshold for `data` by trialling every
/// `σ ∈ [2, d]` on a strided sample.
///
/// Deterministic: the same dataset and config always select the same σ.
/// For `d < 3` there is nothing to tune and σ = 2 is returned without
/// sampling (the paper's degenerate 2-D case).
pub fn tune_sigma(data: &Dataset, config: &TunerConfig) -> TunerReport {
    let d = data.dims();
    if d < 3 || data.len() < 4 {
        return TunerReport {
            sigma: 2,
            trials: Vec::new(),
            sample_size: 0,
        };
    }

    let sample = strided_sample(data, config.sample_size.max(16));
    let node_cost = config.node_cost.unwrap_or(1.0 / d as f64);

    let mut trials = Vec::with_capacity(d - 1);
    for sigma in 2..=d {
        let mut metrics = Metrics::new();
        let boost = BoostConfig {
            merge: MergeConfig {
                sigma,
                max_pivots: crate::merge::DEFAULT_MAX_PIVOTS,
                score: PivotScore::Euclidean,
            },
            sort: config.sort,
            use_stop_point: config.use_stop_point,
        };
        let outcome = boosted_skyline(&sample, &boost, &mut metrics);
        let cost = metrics.dominance_tests as f64 + node_cost * metrics.index_nodes_visited as f64;
        trials.push(TunerTrial {
            sigma,
            cost,
            dominance_tests: metrics.dominance_tests,
            nodes_visited: metrics.index_nodes_visited,
            pivots: outcome.pivots,
        });
    }
    let sigma = trials
        .iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost).then(a.sigma.cmp(&b.sigma)))
        .map(|t| t.sigma)
        .unwrap_or(2);
    TunerReport {
        sigma,
        trials,
        sample_size: sample.len(),
    }
}

/// Deterministic strided sample of about `target` rows.
fn strided_sample(data: &Dataset, target: usize) -> Dataset {
    let n = data.len();
    if n <= target {
        return data.clone();
    }
    let stride = n / target;
    let ids: Vec<crate::point::PointId> = (0..n)
        .step_by(stride.max(1))
        .take(target)
        .map(|i| i as u32)
        .collect();
    data.project(&ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, d: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| (((i * 31 + k * 17) * 2654435761usize) % 97) as f64)
                    .collect()
            })
            .collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn two_d_short_circuits() {
        let data = grid(100, 2);
        let report = tune_sigma(&data, &TunerConfig::default());
        assert_eq!(report.sigma, 2);
        assert!(report.trials.is_empty());
    }

    #[test]
    fn tiny_dataset_short_circuits() {
        let data = grid(3, 5);
        let report = tune_sigma(&data, &TunerConfig::default());
        assert_eq!(report.sigma, 2);
    }

    #[test]
    fn evaluates_every_candidate() {
        let data = grid(500, 6);
        let report = tune_sigma(&data, &TunerConfig::default());
        let sigmas: Vec<usize> = report.trials.iter().map(|t| t.sigma).collect();
        assert_eq!(sigmas, vec![2, 3, 4, 5, 6]);
        assert!(report.sigma >= 2 && report.sigma <= 6);
        assert!(report.sample_size > 0);
    }

    #[test]
    fn winner_minimises_the_cost_model() {
        let data = grid(800, 5);
        let report = tune_sigma(&data, &TunerConfig::default());
        let best = report
            .trials
            .iter()
            .find(|t| t.sigma == report.sigma)
            .unwrap();
        for t in &report.trials {
            assert!(best.cost <= t.cost, "σ={} beat the winner", t.sigma);
        }
    }

    #[test]
    fn deterministic() {
        let data = grid(600, 4);
        let a = tune_sigma(&data, &TunerConfig::default());
        let b = tune_sigma(&data, &TunerConfig::default());
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.trials.len(), b.trials.len());
    }

    #[test]
    fn sample_is_capped_at_dataset_size() {
        let data = grid(50, 4);
        let report = tune_sigma(
            &data,
            &TunerConfig {
                sample_size: 10_000,
                ..TunerConfig::default()
            },
        );
        assert_eq!(report.sample_size, 50);
    }

    #[test]
    fn node_cost_override_changes_the_model() {
        let data = grid(500, 6);
        let cheap_nodes = tune_sigma(
            &data,
            &TunerConfig {
                node_cost: Some(0.0),
                ..Default::default()
            },
        );
        let pricey_nodes = tune_sigma(
            &data,
            &TunerConfig {
                node_cost: Some(100.0),
                ..Default::default()
            },
        );
        // With free node visits only DTs matter; with very expensive node
        // visits the tuner avoids index traffic. The reports must at
        // least be internally consistent.
        for report in [&cheap_nodes, &pricey_nodes] {
            let best = report
                .trials
                .iter()
                .find(|t| t.sigma == report.sigma)
                .unwrap();
            assert!(report.trials.iter().all(|t| best.cost <= t.cost));
        }
    }
}

//! Section 5 of the paper: the **subset-query skyline index**
//! (Figure 3, Algorithms 2–4).
//!
//! Skyline points are stored under their *reversed* maximum dominating
//! subspace `D_p^¬ = D \ D_{p≺S}` in a map-based prefix trie: each trie
//! path is the ascending dimension sequence of one reversed subspace, and
//! each node holds the ids of the points stored at exactly that path.
//!
//! Lemma 5.1 reduces "which skyline points can possibly dominate a testing
//! point `q`" to the reversed subset query: return every stored point whose
//! reversed subspace is a **subset** of the query's reversed subspace
//! `D_q^¬` — equivalently, whose maximum dominating subspace is a
//! **superset** of `D_{q≺S}`. The query walks only trie children whose
//! dimension index belongs to `D_q^¬` (Algorithms 3 and 4), which visits at
//! most `2^{|D_q^¬|}` nodes and runs in `O((d/2)²)` on average (Lemma 5.3).
//!
//! The paper's data structure is "any map"; hash maps give `O(1)` node
//! access and sorted maps `O(log d)` (discussed under Lemma 5.2). Both are
//! provided here: [`SubsetIndex`] (hash) and [`SortedSubsetIndex`]
//! (B-tree), sharing one generic implementation.

use std::collections::{BTreeMap, HashMap};

use crate::metrics::Metrics;
use crate::point::PointId;
use crate::subspace::Subspace;

/// Storage of a trie node's children, keyed by dimension index.
///
/// Implementations must iterate children in a deterministic order is *not*
/// required for correctness — query results are order-insensitive sets —
/// but [`SortedChildren`] does iterate in ascending dimension order.
pub trait Children: Default {
    /// Get the child for `dim`, inserting an empty node if absent.
    fn get_or_insert(&mut self, dim: u8) -> &mut TrieNode<Self>;
    /// Get the child for `dim`, if present.
    fn get_mut(&mut self, dim: u8) -> Option<&mut TrieNode<Self>>;
    /// Remove the child for `dim` (no-op if absent).
    fn remove_child(&mut self, dim: u8);
    /// Visit every `(dim, child)` pair.
    fn visit<'a>(&'a self, f: &mut dyn FnMut(u8, &'a TrieNode<Self>));
    /// Number of children.
    fn len(&self) -> usize;
    /// Whether there are no children.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fixed-seed `u8` hasher (splitmix64 finaliser). Dimension keys never
/// exceed `d ≤ 255`, so `RandomState`'s DoS hardening buys nothing here —
/// while its per-map random seed makes trie iteration order, and with it
/// the exact dominance-test count, vary between runs. A fixed seed keeps
/// `O(1)` access and makes every run (and every trace) reproducible.
#[derive(Debug, Default, Clone)]
pub struct DimHasher(u64);

impl std::hash::Hasher for DimHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.wrapping_mul(0x100).wrapping_add(b as u64);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = self.0.wrapping_mul(0x100).wrapping_add(b as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`DimHasher`].
#[derive(Debug, Default, Clone)]
pub struct DimHasherBuilder;

impl std::hash::BuildHasher for DimHasherBuilder {
    type Hasher = DimHasher;

    fn build_hasher(&self) -> DimHasher {
        DimHasher::default()
    }
}

/// Hash-map children: `O(1)` expected node access (the paper's
/// recommendation), with a deterministic fixed-seed hasher so runs are
/// reproducible.
#[derive(Debug, Default, Clone)]
pub struct HashChildren(HashMap<u8, TrieNode<HashChildren>, DimHasherBuilder>);

impl Children for HashChildren {
    fn get_or_insert(&mut self, dim: u8) -> &mut TrieNode<HashChildren> {
        self.0.entry(dim).or_default()
    }

    fn get_mut(&mut self, dim: u8) -> Option<&mut TrieNode<HashChildren>> {
        self.0.get_mut(&dim)
    }

    fn remove_child(&mut self, dim: u8) {
        self.0.remove(&dim);
    }

    fn visit<'a>(&'a self, f: &mut dyn FnMut(u8, &'a TrieNode<HashChildren>)) {
        for (&dim, child) in &self.0 {
            f(dim, child);
        }
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

/// Sorted-map children: `O(log d)` node access, deterministic ascending
/// iteration (the paper's "sorted map" alternative).
#[derive(Debug, Default, Clone)]
pub struct SortedChildren(BTreeMap<u8, TrieNode<SortedChildren>>);

impl Children for SortedChildren {
    fn get_or_insert(&mut self, dim: u8) -> &mut TrieNode<SortedChildren> {
        self.0.entry(dim).or_default()
    }

    fn get_mut(&mut self, dim: u8) -> Option<&mut TrieNode<SortedChildren>> {
        self.0.get_mut(&dim)
    }

    fn remove_child(&mut self, dim: u8) {
        self.0.remove(&dim);
    }

    fn visit<'a>(&'a self, f: &mut dyn FnMut(u8, &'a TrieNode<SortedChildren>)) {
        for (&dim, child) in &self.0 {
            f(dim, child);
        }
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

/// One node of the prefix trie: the points stored at this exact path plus
/// the sub-maps (Figure 3's key-value pairs).
#[derive(Debug, Clone)]
pub struct TrieNode<C: Children> {
    points: Vec<PointId>,
    children: C,
}

impl<C: Children> Default for TrieNode<C> {
    fn default() -> Self {
        TrieNode {
            points: Vec::new(),
            children: C::default(),
        }
    }
}

/// The subset-query skyline index, generic over the node map.
///
/// Use the [`SubsetIndex`] alias (hash-map nodes) unless you are running
/// the sorted-map ablation.
#[derive(Debug, Clone)]
pub struct GenericSubsetIndex<C: Children> {
    root: TrieNode<C>,
    len: usize,
    dims: usize,
}

/// Hash-map-backed subset index (the paper's default).
pub type SubsetIndex = GenericSubsetIndex<HashChildren>;

/// Sorted-map-backed subset index (the paper's `O(log d)` alternative).
pub type SortedSubsetIndex = GenericSubsetIndex<SortedChildren>;

impl<C: Children> GenericSubsetIndex<C> {
    /// An empty index over a `dims`-dimensional space.
    pub fn new(dims: usize) -> Self {
        assert!(
            dims <= crate::subspace::MAX_DIMS,
            "dimensionality {dims} exceeds {}",
            crate::subspace::MAX_DIMS
        );
        GenericSubsetIndex {
            root: TrieNode::default(),
            len: 0,
            dims,
        }
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index stores no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Algorithm 2 (**Add**): store `point` under its *maximum dominating
    /// subspace* `subspace`. Internally the trie is keyed by the reversed
    /// subspace `subspace^¬`, walked in ascending dimension order.
    pub fn put(&mut self, point: PointId, subspace: Subspace) {
        let reversed = subspace.complement(self.dims);
        let mut node = &mut self.root;
        for dim in reversed.dims() {
            node = node.children.get_or_insert(dim as u8);
        }
        node.points.push(point);
        self.len += 1;
    }

    /// Algorithms 3 + 4 (**Query**): append to `out` every stored point
    /// whose maximum dominating subspace is a superset of `subspace`
    /// (equivalently: reversed subspace ⊆ `subspace^¬`). These are exactly
    /// the stored points a testing point with this subspace must be
    /// dominance-tested against (Lemma 5.1).
    ///
    /// `metrics` records the trie nodes visited, candidates returned, and
    /// the depth/candidate-count distributions.
    pub fn query_into(&self, subspace: Subspace, out: &mut Vec<PointId>, metrics: &mut Metrics) {
        let before = out.len();
        let mut visited = 0u64;
        let mut max_depth = 0u64;
        if subspace.is_empty() {
            // Fast path: the reversed query is the full dimension set, so
            // every child qualifies and every stored point is returned.
            // Collect without the per-child membership tests the general
            // walk pays on each node.
            Self::collect_all(&self.root, out, &mut visited, 0, &mut max_depth);
        } else {
            let reversed = subspace.complement(self.dims);
            Self::query_node(&self.root, reversed, out, &mut visited, 0, &mut max_depth);
        }
        let returned = (out.len() - before) as u64;
        metrics.index_nodes_visited += visited;
        metrics.candidates_returned += returned;
        metrics.container_gets += 1;
        metrics.trie_depth.record(max_depth);
        metrics.trie_candidates.record(returned);
    }

    /// Convenience wrapper over [`Self::query_into`] that allocates.
    pub fn query(&self, subspace: Subspace, metrics: &mut Metrics) -> Vec<PointId> {
        let mut out = Vec::new();
        self.query_into(subspace, &mut out, metrics);
        out
    }

    fn query_node(
        node: &TrieNode<C>,
        reversed_query: Subspace,
        out: &mut Vec<PointId>,
        visited: &mut u64,
        depth: u64,
        max_depth: &mut u64,
    ) {
        *visited += 1;
        *max_depth = (*max_depth).max(depth);
        out.extend_from_slice(&node.points);
        node.children.visit(&mut |dim, child| {
            if reversed_query.contains(dim as usize) {
                Self::query_node(child, reversed_query, out, visited, depth + 1, max_depth);
            }
        });
    }

    /// Unconditional collection for the empty-query fast path: identical
    /// traversal order and metrics accounting to [`Self::query_node`]
    /// with a full reversed query, minus the subset membership test per
    /// child.
    fn collect_all(
        node: &TrieNode<C>,
        out: &mut Vec<PointId>,
        visited: &mut u64,
        depth: u64,
        max_depth: &mut u64,
    ) {
        *visited += 1;
        *max_depth = (*max_depth).max(depth);
        out.extend_from_slice(&node.points);
        node.children.visit(&mut |_, child| {
            Self::collect_all(child, out, visited, depth + 1, max_depth);
        });
    }

    /// Remove one occurrence of `point` stored under `subspace`. Returns
    /// `false` when the point was not stored there. Emptied trie branches
    /// are pruned.
    ///
    /// Removal is not part of the paper's algorithms (its scans only ever
    /// add skyline points) but is required by the streaming extension
    /// ([`crate::streaming`]) where skyline points can be evicted.
    pub fn remove(&mut self, point: PointId, subspace: Subspace) -> bool {
        if self.len == 0 {
            // Nothing is stored, so nothing can be removed: skip the
            // path materialisation and trie walk entirely. Mutation-
            // heavy streaming workloads hit this constantly (every
            // remove against an empty or drained structure).
            return false;
        }
        let reversed = subspace.complement(self.dims);
        let dims: Vec<u8> = reversed.dims().map(|d| d as u8).collect();
        let removed = Self::remove_rec(&mut self.root, &dims, point);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Returns whether the point was removed; prunes empty children on
    /// the way back up.
    fn remove_rec(node: &mut TrieNode<C>, path: &[u8], point: PointId) -> bool {
        match path.split_first() {
            None => match node.points.iter().position(|&p| p == point) {
                Some(at) => {
                    node.points.swap_remove(at);
                    true
                }
                None => false,
            },
            Some((&dim, rest)) => {
                let Some(child) = node.children.get_mut(dim) else {
                    return false;
                };
                let removed = Self::remove_rec(child, rest, point);
                if removed && child.points.is_empty() && child.children.is_empty() {
                    node.children.remove_child(dim);
                }
                removed
            }
        }
    }

    /// Total number of trie nodes, including the root — the index-size
    /// component the paper discusses at the end of Section 5.
    pub fn node_count(&self) -> usize {
        fn count<C: Children>(node: &TrieNode<C>) -> usize {
            let mut n = 1;
            node.children.visit(&mut |_, child| n += count(child));
            n
        }
        count(&self.root)
    }

    /// Iterate over every stored `(point, maximum dominating subspace)`
    /// pair. Ordering is unspecified.
    pub fn entries(&self) -> Vec<(PointId, Subspace)> {
        fn walk<C: Children>(
            node: &TrieNode<C>,
            path: Subspace,
            dims: usize,
            out: &mut Vec<(PointId, Subspace)>,
        ) {
            let subspace = path.complement(dims);
            for &p in &node.points {
                out.push((p, subspace));
            }
            node.children.visit(&mut |dim, child| {
                let mut next = path;
                next.insert(dim as usize);
                walk(child, next, dims, out);
            });
        }
        let mut out = Vec::with_capacity(self.len);
        walk(&self.root, Subspace::EMPTY, self.dims, &mut out);
        out
    }

    /// Drop all stored points, keeping the dimensionality.
    pub fn clear(&mut self) {
        self.root = TrieNode::default();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims.iter().copied())
    }

    /// Brute-force oracle for the subset query semantics.
    fn oracle(entries: &[(PointId, Subspace)], query: Subspace) -> Vec<PointId> {
        let mut v: Vec<PointId> = entries
            .iter()
            .filter(|(_, s)| s.is_superset_of(query))
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    fn check_against_oracle<C: Children>(
        index: &GenericSubsetIndex<C>,
        entries: &[(PointId, Subspace)],
        query: Subspace,
    ) {
        let mut m = Metrics::new();
        let mut got = index.query(query, &mut m);
        got.sort_unstable();
        assert_eq!(got, oracle(entries, query), "query {query:?}");
    }

    #[test]
    fn paper_figure_3_example() {
        // The subspaces of Figure 3 (dimensions renumbered to 0-based:
        // paper {1,2} -> {0,1}, etc.) are *reversed* subspaces; `put`
        // expects the forward subspace, so complement them for an 8-D
        // space (the figure's universe includes dimension 7 = paper's 8).
        let dims = 8;
        let reversed: Vec<Subspace> = vec![
            sub(&[0, 1]),
            sub(&[0, 2, 4, 6]),
            sub(&[0, 4]),
            sub(&[0, 6]),
            sub(&[2, 4]),
            sub(&[2, 6]),
            sub(&[4, 6]),
        ];
        let mut index = SubsetIndex::new(dims);
        let mut entries = Vec::new();
        for (i, r) in reversed.iter().enumerate() {
            let forward = r.complement(dims);
            index.put(i as PointId, forward);
            entries.push((i as PointId, forward));
        }
        assert_eq!(index.len(), 7);

        // Query set {1,3,5} of the paper = reversed {0,2,4} here. Stored
        // reversed subsets of {0,2,4}: {0,4} and {2,4} -> points 2 and 4.
        let query = sub(&[0, 2, 4]).complement(dims);
        let mut m = Metrics::new();
        let mut got = index.query(query, &mut m);
        got.sort_unstable();
        assert_eq!(got, vec![2, 4]);
        check_against_oracle(&index, &entries, query);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = SubsetIndex::new(4);
        let mut m = Metrics::new();
        assert!(index.query(sub(&[1]), &mut m).is_empty());
        assert_eq!(index.len(), 0);
        assert!(index.is_empty());
        assert_eq!(index.node_count(), 1); // just the root
    }

    #[test]
    fn full_subspace_point_matches_every_query() {
        // D_p = full space => reversed empty => stored at the root =>
        // returned for every query.
        let mut index = SubsetIndex::new(4);
        index.put(7, Subspace::full(4));
        for query_bits in 0..16u64 {
            let mut m = Metrics::new();
            let got = index.query(Subspace::from_bits(query_bits), &mut m);
            assert_eq!(got, vec![7]);
        }
    }

    #[test]
    fn disjoint_subspaces_do_not_match() {
        let mut index = SubsetIndex::new(4);
        index.put(1, sub(&[0, 1])); // reversed {2,3}
        let mut m = Metrics::new();
        // Query subspace {2}: D_p = {0,1} is not a superset of {2}.
        assert!(index.query(sub(&[2]), &mut m).is_empty());
        // Query subspace {0}: {0,1} ⊇ {0}.
        assert_eq!(index.query(sub(&[0]), &mut m), vec![1]);
    }

    #[test]
    fn multiple_points_same_subspace_share_a_node() {
        let mut index = SubsetIndex::new(5);
        index.put(1, sub(&[0, 2]));
        index.put(2, sub(&[0, 2]));
        index.put(3, sub(&[0, 2]));
        let nodes = index.node_count();
        let mut m = Metrics::new();
        let mut got = index.query(sub(&[0, 2]), &mut m);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        index.put(4, sub(&[0, 2]));
        assert_eq!(
            index.node_count(),
            nodes,
            "no new node for a shared subspace"
        );
    }

    #[test]
    fn exhaustive_small_universe_hash() {
        exhaustive_small_universe::<HashChildren>();
    }

    #[test]
    fn exhaustive_small_universe_sorted() {
        exhaustive_small_universe::<SortedChildren>();
    }

    /// Store every subspace of a 5-D universe, then check every possible
    /// query against the brute-force oracle.
    fn exhaustive_small_universe<C: Children>() {
        let dims = 5;
        let mut index = GenericSubsetIndex::<C>::new(dims);
        let mut entries = Vec::new();
        for bits in 0..(1u64 << dims) {
            let s = Subspace::from_bits(bits);
            index.put(bits as PointId, s);
            entries.push((bits as PointId, s));
        }
        assert_eq!(index.len(), 1 << dims);
        for qbits in 0..(1u64 << dims) {
            check_against_oracle(&index, &entries, Subspace::from_bits(qbits));
        }
    }

    #[test]
    fn empty_query_fast_path_returns_every_entry() {
        // The empty subspace mask reverses to the full dimension set:
        // every stored subspace is a superset of ∅, so the fast path must
        // return every stored point — with candidate counts pinned to the
        // exact index size for both backends.
        fn check<C: Children>() {
            let dims = 6;
            let mut index = GenericSubsetIndex::<C>::new(dims);
            let mut entries = Vec::new();
            for bits in [0u64, 0b1, 0b101, 0b11010, 0b111111, 0b100100] {
                let s = Subspace::from_bits(bits);
                index.put(bits as PointId, s);
                entries.push((bits as PointId, s));
            }
            let mut m = Metrics::new();
            let mut got = index.query(Subspace::EMPTY, &mut m);
            got.sort_unstable();
            assert_eq!(got, oracle(&entries, Subspace::EMPTY));
            assert_eq!(got.len(), index.len(), "every stored point matches");
            assert_eq!(m.candidates_returned, index.len() as u64);
            assert_eq!(m.container_gets, 1);
            assert_eq!(
                m.index_nodes_visited,
                index.node_count() as u64,
                "the collect-all walk visits each node exactly once"
            );
        }
        check::<HashChildren>();
        check::<SortedChildren>();
    }

    #[test]
    fn metrics_accounting() {
        let mut index = SubsetIndex::new(4);
        index.put(0, sub(&[0, 1, 2, 3]));
        index.put(1, sub(&[1, 2, 3]));
        let mut m = Metrics::new();
        let got = index.query(sub(&[1]), &mut m);
        assert_eq!(got.len(), 2);
        assert_eq!(m.container_gets, 1);
        assert_eq!(m.candidates_returned, 2);
        assert!(m.index_nodes_visited >= 2);
    }

    #[test]
    fn entries_roundtrip() {
        let mut index = SortedSubsetIndex::new(6);
        let items = [
            (10, sub(&[0, 1])),
            (11, sub(&[2, 3, 4])),
            (12, Subspace::full(6)),
            (13, sub(&[5])),
        ];
        for (p, s) in items {
            index.put(p, s);
        }
        let mut got = index.entries();
        got.sort_unstable();
        let mut expected = items.to_vec();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn clear_resets() {
        let mut index = SubsetIndex::new(3);
        index.put(0, sub(&[0]));
        index.clear();
        assert!(index.is_empty());
        assert_eq!(index.node_count(), 1);
        assert_eq!(index.dims(), 3);
    }

    #[test]
    fn remove_deletes_exactly_one_occurrence() {
        let mut index = SubsetIndex::new(4);
        index.put(1, sub(&[0, 1]));
        index.put(2, sub(&[0, 1]));
        index.put(1, sub(&[2]));
        assert_eq!(index.len(), 3);
        assert!(index.remove(1, sub(&[0, 1])));
        assert_eq!(index.len(), 2);
        // Same point under another subspace survives.
        let mut m = Metrics::new();
        assert_eq!(index.query(sub(&[2]), &mut m), vec![1]);
        // Removing again fails.
        assert!(!index.remove(1, sub(&[0, 1])));
        assert!(index.remove(2, sub(&[0, 1])));
        assert!(index.remove(1, sub(&[2])));
        assert!(index.is_empty());
        assert_eq!(index.node_count(), 1, "emptied branches must be pruned");
    }

    #[test]
    fn remove_missing_subspace_is_noop() {
        let mut index = SubsetIndex::new(4);
        index.put(1, sub(&[0]));
        assert!(!index.remove(1, sub(&[1])));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn remove_then_query_consistency() {
        let dims = 5;
        let mut index = SubsetIndex::new(dims);
        let mut entries: Vec<(PointId, Subspace)> = Vec::new();
        for bits in 0..(1u64 << dims) {
            let s = Subspace::from_bits(bits);
            index.put(bits as PointId, s);
            entries.push((bits as PointId, s));
        }
        // Remove every third entry and re-verify all queries.
        entries.retain(|&(p, s)| {
            if p % 3 == 0 {
                assert!(index.remove(p, s));
                false
            } else {
                true
            }
        });
        for qbits in 0..(1u64 << dims) {
            check_against_oracle(&index, &entries, Subspace::from_bits(qbits));
        }
    }

    #[test]
    fn query_into_appends() {
        let mut index = SubsetIndex::new(3);
        index.put(5, sub(&[0, 1, 2]));
        let mut out = vec![99];
        let mut m = Metrics::new();
        index.query_into(sub(&[1]), &mut out, &mut m);
        assert_eq!(out, vec![99, 5]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_dims_panics() {
        let _ = SubsetIndex::new(65);
    }
}

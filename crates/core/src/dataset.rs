//! In-memory multidimensional dataset.
//!
//! A [`Dataset`] is an immutable, validated, row-major `f64` matrix in the
//! canonical *minimising* form (smaller is better in every dimension). All
//! skyline algorithms operate on `&Dataset`; points are addressed by
//! [`PointId`] so that index structures stay compact.

use crate::error::{Error, Result};
use crate::point::{apply_preferences, PointId, Preference};
use crate::subspace::MAX_DIMS;

/// An immutable, validated multidimensional dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    values: Vec<f64>,
    dims: usize,
}

impl Dataset {
    /// Build a dataset from a flat row-major buffer.
    ///
    /// Validates shape, dimensionality bounds, and rejects NaN values
    /// (a NaN breaks the total preference order the skyline is defined
    /// on). Negative zeros are canonicalised to `+0.0`: the two compare
    /// equal under the preference order, but `total_cmp`-based sort keys
    /// distinguish them, which would let a `-0.0` point jump ahead of a
    /// dominator holding `+0.0`.
    pub fn from_flat(mut values: Vec<f64>, dims: usize) -> Result<Self> {
        if dims == 0 {
            return Err(Error::ZeroDimensions);
        }
        if dims > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                requested: dims,
                max: MAX_DIMS,
            });
        }
        if values.len() % dims != 0 {
            return Err(Error::BufferShape {
                len: values.len(),
                dims,
            });
        }
        for (idx, v) in values.iter_mut().enumerate() {
            if v.is_nan() {
                return Err(Error::NotANumber {
                    row: idx / dims,
                    dim: idx % dims,
                });
            }
            if *v == 0.0 {
                *v = 0.0; // -0.0 -> +0.0
            }
        }
        Ok(Dataset { values, dims })
    }

    /// Build a dataset from rows.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self> {
        let dims = rows.first().map_or(0, |r| r.as_ref().len());
        if dims == 0 {
            return Err(Error::ZeroDimensions);
        }
        let mut values = Vec::with_capacity(rows.len() * dims);
        for (i, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != dims {
                return Err(Error::RowLength {
                    row: i,
                    got: row.len(),
                    expected: dims,
                });
            }
            values.extend_from_slice(row);
        }
        Dataset::from_flat(values, dims)
    }

    /// Build a dataset from rows of raw values with per-dimension
    /// preferences, folding `Max` columns into the canonical minimising
    /// form (see [`Preference`]).
    pub fn from_rows_with_preferences<R: AsRef<[f64]>>(
        rows: &[R],
        prefs: &[Preference],
    ) -> Result<Self> {
        let mut ds = Dataset::from_rows(rows)?;
        if prefs.len() != ds.dims {
            return Err(Error::RowLength {
                row: 0,
                got: prefs.len(),
                expected: ds.dims,
            });
        }
        apply_preferences(&mut ds.values, prefs);
        Ok(ds)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.dims
    }

    /// Whether the dataset has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The coordinates of one point.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let start = id as usize * self.dims;
        &self.values[start..start + self.dims]
    }

    /// A single coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `dim` is out of range.
    #[inline]
    pub fn value(&self, id: PointId, dim: usize) -> f64 {
        debug_assert!(dim < self.dims);
        self.values[id as usize * self.dims + dim]
    }

    /// Iterate over `(id, coordinates)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (PointId, &[f64])> {
        self.values
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, row)| (i as PointId, row))
    }

    /// All point ids, ascending.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = PointId> {
        (0..self.len() as PointId).map(|i| i as PointId)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.values
    }

    /// A view of the dataset restricted to a subset of point ids, useful
    /// for divide-and-conquer algorithms. The returned rows are copies.
    pub fn project(&self, ids: &[PointId]) -> Dataset {
        let mut values = Vec::with_capacity(ids.len() * self.dims);
        for &id in ids {
            values.extend_from_slice(self.point(id));
        }
        Dataset {
            values,
            dims: self.dims,
        }
    }

    /// Project every point onto a subspace (keeping all rows), for
    /// subspace-skyline computation. Dimensions are kept in ascending
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the subspace is empty or references a dimension `≥ d`.
    pub fn project_dims(&self, subspace: crate::subspace::Subspace) -> Dataset {
        let dims: Vec<usize> = subspace.dims().collect();
        assert!(!dims.is_empty(), "cannot project onto the empty subspace");
        assert!(
            dims.iter().all(|&d| d < self.dims),
            "subspace {subspace} exceeds the dataset dimensionality {}",
            self.dims
        );
        let mut values = Vec::with_capacity(self.len() * dims.len());
        for (_, row) in self.iter() {
            for &d in &dims {
                values.push(row[d]);
            }
        }
        Dataset {
            values,
            dims: dims.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[[1.0, 2.0], [3.0, 4.0]]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.point(0), &[1.0, 2.0]);
        assert_eq!(ds.point(1), &[3.0, 4.0]);
        assert_eq!(ds.value(1, 0), 3.0);
    }

    #[test]
    fn from_flat_shape_validation() {
        assert_eq!(
            Dataset::from_flat(vec![1.0, 2.0, 3.0], 2),
            Err(Error::BufferShape { len: 3, dims: 2 })
        );
        assert_eq!(Dataset::from_flat(vec![], 0), Err(Error::ZeroDimensions));
        assert!(matches!(
            Dataset::from_flat(vec![0.0; 65], 65),
            Err(Error::TooManyDimensions { requested: 65, .. })
        ));
    }

    #[test]
    fn nan_rejected_with_position() {
        let r = Dataset::from_flat(vec![1.0, 2.0, f64::NAN, 4.0], 2);
        assert_eq!(r, Err(Error::NotANumber { row: 1, dim: 0 }));
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        assert_eq!(
            Dataset::from_rows(&rows),
            Err(Error::RowLength {
                row: 1,
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn empty_rows_rejected() {
        let rows: Vec<Vec<f64>> = vec![];
        assert_eq!(Dataset::from_rows(&rows), Err(Error::ZeroDimensions));
    }

    #[test]
    fn preferences_are_folded() {
        let ds = Dataset::from_rows_with_preferences(
            &[[1.0, 2.0], [3.0, 4.0]],
            &[Preference::Min, Preference::Max],
        )
        .unwrap();
        assert_eq!(ds.point(0), &[1.0, -2.0]);
        assert_eq!(ds.point(1), &[3.0, -4.0]);
    }

    #[test]
    fn preference_count_mismatch_rejected() {
        let r = Dataset::from_rows_with_preferences(&[[1.0, 2.0]], &[Preference::Min]);
        assert!(r.is_err());
    }

    #[test]
    fn iteration() {
        let ds = Dataset::from_rows(&[[1.0], [2.0], [3.0]]).unwrap();
        let collected: Vec<(PointId, f64)> = ds.iter().map(|(id, p)| (id, p[0])).collect();
        assert_eq!(collected, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(ds.ids().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn projection_copies_selected_rows() {
        let ds = Dataset::from_rows(&[[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]).unwrap();
        let sub = ds.project(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[3.0, 3.0]);
        assert_eq!(sub.point(1), &[1.0, 1.0]);
    }

    #[test]
    fn projection_onto_subspace() {
        use crate::subspace::Subspace;
        let ds = Dataset::from_rows(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]).unwrap();
        let sub = ds.project_dims(Subspace::from_dims([0, 2]));
        assert_eq!(sub.dims(), 2);
        assert_eq!(sub.point(0), &[1.0, 3.0]);
        assert_eq!(sub.point(1), &[4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn projection_onto_empty_subspace_panics() {
        use crate::subspace::Subspace;
        let ds = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        let _ = ds.project_dims(Subspace::EMPTY);
    }

    #[test]
    #[should_panic(expected = "exceeds the dataset dimensionality")]
    fn projection_out_of_range_panics() {
        use crate::subspace::Subspace;
        let ds = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        let _ = ds.project_dims(Subspace::from_dims([5]));
    }

    #[test]
    fn empty_dataset_with_dims_is_valid() {
        let ds = Dataset::from_flat(vec![], 4).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.len(), 0);
        assert_eq!(ds.dims(), 4);
    }
}

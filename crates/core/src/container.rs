//! The generic skyline-container abstraction.
//!
//! The paper presents its method "as a component like a container that
//! allows to store (as put function) the skyline points and to retrieve (as
//! a get function) a minimum number of skyline points to compare with a
//! testing point" (Section 1). Sorting-based algorithms are boosted by
//! swapping their plain skyline list for the subset index behind this
//! trait; nothing else in the algorithm changes.

use crate::metrics::Metrics;
use crate::point::PointId;
use crate::subset_index::{Children, GenericSubsetIndex, HashChildren};
use crate::subspace::Subspace;

/// A container of confirmed skyline points that can serve the candidates a
/// testing point must be dominance-tested against.
pub trait SkylineContainer {
    /// Store a newly confirmed skyline point together with its maximum
    /// dominating subspace.
    fn put(&mut self, point: PointId, subspace: Subspace, metrics: &mut Metrics);

    /// Append to `out` every stored point that a testing point with
    /// maximum dominating subspace `subspace` must be compared with.
    ///
    /// Completeness contract: the result must include every stored point
    /// that dominates the testing point. Returning extra points only costs
    /// dominance tests, never correctness.
    fn candidates_into(&self, subspace: Subspace, out: &mut Vec<PointId>, metrics: &mut Metrics);

    /// Number of stored points.
    fn len(&self) -> usize;

    /// Whether the container is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The trivial container: a plain list, every stored point is a candidate
/// for every test. This is what un-boosted SFS/SaLSa effectively use.
#[derive(Debug, Default, Clone)]
pub struct ListContainer {
    points: Vec<PointId>,
}

impl ListContainer {
    /// An empty list container.
    pub fn new() -> Self {
        ListContainer::default()
    }
}

impl SkylineContainer for ListContainer {
    fn put(&mut self, point: PointId, _subspace: Subspace, metrics: &mut Metrics) {
        self.points.push(point);
        metrics.container_puts += 1;
    }

    fn candidates_into(&self, _subspace: Subspace, out: &mut Vec<PointId>, metrics: &mut Metrics) {
        out.extend_from_slice(&self.points);
        metrics.container_gets += 1;
        metrics.candidates_returned += self.points.len() as u64;
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

/// The paper's container: skyline points partitioned by maximum dominating
/// subspace in the subset-query trie. Candidates for a testing point are
/// exactly the stored points whose subspace is a superset of the testing
/// point's (Lemma 5.1).
#[derive(Debug, Clone)]
pub struct SubsetContainer<C: Children = HashChildren> {
    index: GenericSubsetIndex<C>,
}

impl<C: Children> SubsetContainer<C> {
    /// An empty subset container over a `dims`-dimensional space.
    pub fn new(dims: usize) -> Self {
        SubsetContainer {
            index: GenericSubsetIndex::new(dims),
        }
    }

    /// Access the underlying index (e.g. for size statistics).
    pub fn index(&self) -> &GenericSubsetIndex<C> {
        &self.index
    }
}

impl<C: Children> SkylineContainer for SubsetContainer<C> {
    fn put(&mut self, point: PointId, subspace: Subspace, metrics: &mut Metrics) {
        self.index.put(point, subspace);
        metrics.container_puts += 1;
    }

    fn candidates_into(&self, subspace: Subspace, out: &mut Vec<PointId>, metrics: &mut Metrics) {
        self.index.query_into(subspace, out, metrics);
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(dims: &[usize]) -> Subspace {
        Subspace::from_dims(dims.iter().copied())
    }

    #[test]
    fn list_container_returns_everything() {
        let mut c = ListContainer::new();
        let mut m = Metrics::new();
        c.put(1, sub(&[0]), &mut m);
        c.put(2, sub(&[1]), &mut m);
        let mut out = Vec::new();
        c.candidates_into(sub(&[2]), &mut out, &mut m);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(c.len(), 2);
        assert_eq!(m.container_puts, 2);
        assert_eq!(m.container_gets, 1);
        assert_eq!(m.candidates_returned, 2);
    }

    #[test]
    fn subset_container_filters_by_superset() {
        let mut c = SubsetContainer::<HashChildren>::new(4);
        let mut m = Metrics::new();
        c.put(1, sub(&[0, 1, 2]), &mut m);
        c.put(2, sub(&[3]), &mut m);
        let mut out = Vec::new();
        c.candidates_into(sub(&[0, 1]), &mut out, &mut m);
        assert_eq!(out, vec![1]);
        assert!(!c.is_empty());
        assert_eq!(c.index().len(), 2);
    }

    #[test]
    fn subset_container_is_conservative_superset_of_dominators() {
        // The subset container may return fewer points than the list, but
        // never misses a potential dominator: a point with subspace S can
        // only be dominated by points with subspace ⊇ S (Lemma 4.3).
        let mut list = ListContainer::new();
        let mut subset = SubsetContainer::<HashChildren>::new(3);
        let mut m = Metrics::new();
        let entries = [
            (0, sub(&[0])),
            (1, sub(&[0, 1])),
            (2, sub(&[0, 1, 2])),
            (3, sub(&[2])),
        ];
        for (p, s) in entries {
            list.put(p, s, &mut m);
            subset.put(p, s, &mut m);
        }
        for (_, q) in entries {
            let mut from_subset = Vec::new();
            subset.candidates_into(q, &mut from_subset, &mut m);
            for (p, s) in entries {
                if s.is_superset_of(q) {
                    assert!(from_subset.contains(&p), "missing {p} for query {q:?}");
                }
            }
        }
    }

    #[test]
    fn trait_object_usability() {
        let mut m = Metrics::new();
        let mut containers: Vec<Box<dyn SkylineContainer>> = vec![
            Box::new(ListContainer::new()),
            Box::new(SubsetContainer::<HashChildren>::new(2)),
        ];
        for c in &mut containers {
            c.put(9, sub(&[0]), &mut m);
            assert_eq!(c.len(), 1);
        }
    }
}

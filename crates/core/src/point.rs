//! Point identifiers and preference orders.
//!
//! The skyline operator is defined over a *preference order* per dimension
//! (Definition 3.1 of the paper). Internally every algorithm in this
//! workspace minimises: smaller values are better. [`Preference`] lets users
//! describe mixed min/max objectives; [`apply_preferences`] folds them into
//! the canonical minimising form at dataset construction time so that the
//! hot dominance-test path never branches on direction.

/// Identifier of a point inside a [`crate::dataset::Dataset`].
///
/// Stored as `u32` to keep index structures compact; a dataset is limited to
/// `u32::MAX` rows, far beyond the paper's largest workload (10^6 points).
pub type PointId = u32;

/// Direction of the preference order on one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Preference {
    /// Smaller values are better (the canonical form, e.g. price).
    #[default]
    Min,
    /// Larger values are better (e.g. rating); folded into `Min` by negation.
    Max,
}

impl Preference {
    /// Convert a raw value into the canonical minimising form.
    #[inline]
    pub fn canonicalize(self, value: f64) -> f64 {
        match self {
            Preference::Min => value,
            Preference::Max => -value,
        }
    }
}

/// Fold per-dimension preferences into the canonical minimising form.
///
/// `values` is a row-major buffer of `dims = prefs.len()` columns. Columns
/// whose preference is [`Preference::Max`] are negated in place.
///
/// # Panics
///
/// Panics if `values.len()` is not a multiple of `prefs.len()` (enforced
/// upstream by dataset validation) or if `prefs` is empty.
pub fn apply_preferences(values: &mut [f64], prefs: &[Preference]) {
    assert!(
        !prefs.is_empty(),
        "preferences must cover at least one dimension"
    );
    assert_eq!(
        values.len() % prefs.len(),
        0,
        "value buffer is not a multiple of the dimensionality"
    );
    if prefs.iter().all(|p| *p == Preference::Min) {
        return;
    }
    for row in values.chunks_exact_mut(prefs.len()) {
        for (v, p) in row.iter_mut().zip(prefs) {
            *v = p.canonicalize(*v);
        }
    }
}

/// Squared Euclidean distance of a point to the zero point.
///
/// Algorithm 1 of the paper scores points by Euclidean distance to the
/// origin; the square preserves the ordering and avoids the `sqrt`.
#[inline]
pub fn squared_norm(point: &[f64]) -> f64 {
    point.iter().map(|v| v * v).sum()
}

/// Sum of all coordinates — the monotone scoring function used by SFS.
#[inline]
pub fn coordinate_sum(point: &[f64]) -> f64 {
    point.iter().sum()
}

/// Minimum coordinate — the `minC` scoring function used by SaLSa.
#[inline]
pub fn min_coordinate(point: &[f64]) -> f64 {
    point.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum coordinate — used by SaLSa's stop-point test.
#[inline]
pub fn max_coordinate(point: &[f64]) -> f64 {
    point.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalize_min_is_identity() {
        assert_eq!(Preference::Min.canonicalize(3.5), 3.5);
    }

    #[test]
    fn canonicalize_max_negates() {
        assert_eq!(Preference::Max.canonicalize(3.5), -3.5);
    }

    #[test]
    fn apply_preferences_mixed() {
        let mut buf = vec![1.0, 2.0, 3.0, 4.0];
        apply_preferences(&mut buf, &[Preference::Min, Preference::Max]);
        assert_eq!(buf, vec![1.0, -2.0, 3.0, -4.0]);
    }

    #[test]
    fn apply_preferences_all_min_is_noop() {
        let mut buf = vec![1.0, 2.0];
        apply_preferences(&mut buf, &[Preference::Min, Preference::Min]);
        assert_eq!(buf, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of the dimensionality")]
    fn apply_preferences_shape_mismatch_panics() {
        let mut buf = vec![1.0, 2.0, 3.0];
        apply_preferences(&mut buf, &[Preference::Max, Preference::Max]);
    }

    #[test]
    fn scoring_functions() {
        let p = [3.0, 4.0, 1.0];
        assert_eq!(squared_norm(&p), 26.0);
        assert_eq!(coordinate_sum(&p), 8.0);
        assert_eq!(min_coordinate(&p), 1.0);
        assert_eq!(max_coordinate(&p), 4.0);
    }

    #[test]
    fn scoring_functions_empty_point() {
        assert_eq!(squared_norm(&[]), 0.0);
        assert_eq!(coordinate_sum(&[]), 0.0);
        assert_eq!(min_coordinate(&[]), f64::INFINITY);
        assert_eq!(max_coordinate(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn preference_default_is_min() {
        assert_eq!(Preference::default(), Preference::Min);
    }
}

//! Dominance tests (Definition 3.1) and dominating subspaces (Definition 3.4).
//!
//! These are the innermost primitives of every skyline algorithm. All of
//! them work on raw `&[f64]` slices in the canonical minimising form and are
//! `#[inline]` so that per-algorithm loops can fuse them. Counting is done
//! by the caller through [`crate::metrics::Metrics`]; keeping the primitives
//! counter-free lets the compiler vectorise the common path.

use crate::subspace::Subspace;

/// Outcome of a pairwise dominance test between points `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomRelation {
    /// `a ≺ b`: `a` dominates `b`.
    Dominates,
    /// `b ≺ a`: `a` is dominated by `b`.
    DominatedBy,
    /// `a = b` in every dimension.
    Equal,
    /// `a ≁ b`: neither dominates the other and they differ somewhere.
    Incomparable,
}

impl DomRelation {
    /// The relation seen from the other point's perspective.
    #[inline]
    pub fn flip(self) -> DomRelation {
        match self {
            DomRelation::Dominates => DomRelation::DominatedBy,
            DomRelation::DominatedBy => DomRelation::Dominates,
            other => other,
        }
    }
}

/// Full three-way dominance test: classify the pair `(a, b)`.
///
/// # Panics
///
/// Debug-asserts that the slices have equal length.
#[inline]
pub fn dominance(a: &[f64], b: &[f64]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
            if b_better {
                return DomRelation::Incomparable;
            }
        } else if y < x {
            b_better = true;
            if a_better {
                return DomRelation::Incomparable;
            }
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// One-sided test: does `a` dominate `b` (`a ≺ b`)?
///
/// Slightly cheaper than [`dominance`] when the caller only needs one
/// direction — the common case in presorted scans, where the candidate can
/// never be dominated by the testing point.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Weak dominance `a ⪯ b`: `a` is nowhere worse than `b`.
#[inline]
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// The *dominating subspace* `D_{q≺p}` of `q` with respect to `p`
/// (Definition 3.4): the set of dimensions where `q` is strictly better
/// than `p`.
///
/// Consequences spelled out in the paper:
/// - `D_{q≺p} = ∅` ⇒ `p ⪯ q` (so `q` is dominated by `p`, or equal);
/// - `D_{q≺p} = D` ⇒ `q ≺ p`.
#[inline]
pub fn dominating_subspace(q: &[f64], p: &[f64]) -> Subspace {
    debug_assert_eq!(q.len(), p.len());
    debug_assert!(q.len() <= crate::subspace::MAX_DIMS);
    let mut bits = 0u64;
    for (i, (x, y)) in q.iter().zip(p).enumerate() {
        if x < y {
            bits |= 1u64 << i;
        }
    }
    Subspace::from_bits(bits)
}

/// Exact equality of two points in every dimension.
#[inline]
pub fn points_equal(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x == y)
}

/// Lexicographic total order over coordinate rows.
///
/// Its key property: if `a ≺ b` (even weakly, with `a ≠ b`), then at the
/// first differing coordinate `a` is strictly smaller, so
/// `lex_cmp(a, b) == Less`. Monotone scoring functions guarantee
/// `score(a) ≤ score(b)` mathematically, but floating-point rounding can
/// collapse that to *equality* (e.g. `1e16 + 1.0 == 1e16`); presorted
/// scans therefore use this comparator as the tie-break so that a
/// dominator always precedes its victims even when scores round equal.
#[inline]
pub fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_all_relations() {
        assert_eq!(dominance(&[1.0, 1.0], &[2.0, 2.0]), DomRelation::Dominates);
        assert_eq!(
            dominance(&[2.0, 2.0], &[1.0, 1.0]),
            DomRelation::DominatedBy
        );
        assert_eq!(dominance(&[1.0, 2.0], &[1.0, 2.0]), DomRelation::Equal);
        assert_eq!(
            dominance(&[1.0, 2.0], &[2.0, 1.0]),
            DomRelation::Incomparable
        );
    }

    #[test]
    fn dominance_requires_strict_improvement_somewhere() {
        // Equal in one dim, better in the other: still dominates.
        assert_eq!(dominance(&[1.0, 1.0], &[1.0, 2.0]), DomRelation::Dominates);
        assert_eq!(
            dominance(&[1.0, 2.0], &[1.0, 1.0]),
            DomRelation::DominatedBy
        );
    }

    #[test]
    fn flip_is_involutive() {
        for r in [
            DomRelation::Dominates,
            DomRelation::DominatedBy,
            DomRelation::Equal,
            DomRelation::Incomparable,
        ] {
            assert_eq!(r.flip().flip(), r);
        }
    }

    #[test]
    fn one_sided_agrees_with_three_way() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 1.0], &[2.0, 2.0]),
            (&[2.0, 2.0], &[1.0, 1.0]),
            (&[1.0, 2.0], &[2.0, 1.0]),
            (&[1.0, 2.0], &[1.0, 2.0]),
            (&[1.0, 1.0], &[1.0, 2.0]),
        ];
        for (a, b) in cases {
            assert_eq!(
                dominates(a, b),
                dominance(a, b) == DomRelation::Dominates,
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn weak_dominance() {
        assert!(weakly_dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(weakly_dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(!weakly_dominates(&[1.0, 3.0], &[1.0, 2.0]));
    }

    #[test]
    fn dominating_subspace_definition() {
        // q better in dims 0 and 2, worse in 1, equal in 3.
        let q = [1.0, 5.0, 0.5, 2.0];
        let p = [2.0, 4.0, 1.0, 2.0];
        let d = dominating_subspace(&q, &p);
        assert_eq!(d, Subspace::from_dims([0, 2]));
    }

    #[test]
    fn empty_dominating_subspace_means_weakly_dominated() {
        let q = [2.0, 2.0];
        let p = [1.0, 2.0];
        assert!(dominating_subspace(&q, &p).is_empty());
        assert!(weakly_dominates(&p, &q));
    }

    #[test]
    fn full_dominating_subspace_means_dominates() {
        let q = [0.0, 0.0];
        let p = [1.0, 1.0];
        assert_eq!(dominating_subspace(&q, &p), Subspace::full(2));
        assert!(dominates(&q, &p));
    }

    #[test]
    fn equality_check() {
        assert!(points_equal(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!points_equal(&[1.0, 2.0], &[1.0, 2.5]));
        assert!(points_equal(&[], &[]));
    }

    #[test]
    fn single_dimension() {
        assert_eq!(dominance(&[1.0], &[2.0]), DomRelation::Dominates);
        assert_eq!(dominance(&[2.0], &[1.0]), DomRelation::DominatedBy);
        assert_eq!(dominance(&[1.0], &[1.0]), DomRelation::Equal);
    }

    #[test]
    fn negative_and_mixed_values() {
        // Canonical minimising form can contain negated (Max) columns.
        assert_eq!(
            dominance(&[-5.0, 0.0], &[-1.0, 0.0]),
            DomRelation::Dominates
        );
        assert_eq!(
            dominating_subspace(&[-5.0, 1.0], &[-1.0, 0.0]),
            Subspace::singleton(0)
        );
    }
}

//! Algorithm 1 of the paper: **Merge** — the subspace-union phase.
//!
//! The goal is to distribute the points of a dataset over as many
//! incomparable subspaces as possible. A sequence of *pivot points* is
//! drawn from the dataset in ascending order of a monotone score (the paper
//! scores by Euclidean distance to the zero point); each pivot is provably a
//! skyline point. Every pivot is compared against all remaining points:
//! points it (weakly) dominates are pruned, duplicates of it join the
//! skyline, and every survivor `q` merges the *dominating subspace*
//! `D_{q≺p}` (Definition 3.4) into its running *maximum dominating
//! subspace* `D_{q≺S}` (Definition 4.1).
//!
//! Iteration stops when the *stability threshold* `σ` is reached: `σ'`, the
//! number of subspace-size buckets whose population did not change between
//! consecutive iterations, satisfies `σ' ≥ σ`. Small `σ` stops early (few
//! pivots); `σ = d` demands a fully stable distribution.
//!
//! ## Scoring note
//!
//! The paper scores by Euclidean distance to the origin, which is monotone
//! w.r.t. dominance only for non-negative data (true for the paper's
//! `[0,1]^d` benchmarks). To stay correct for arbitrary real data — e.g.
//! after folding `Max` preferences by negation — we score by squared
//! Euclidean distance to the dataset's *minimum corner*, which coincides
//! with the paper's score on `[0,1]^d`-style data and is monotone for any
//! input: if `p ≺ q` then `p - m ≤ q - m` componentwise with all entries
//! non-negative, hence `‖p - m‖ < ‖q - m‖`.

use skyline_obs::{Event, NoopRecorder, Recorder};

use crate::cancel::{CancelToken, Cancelled};
use crate::dataset::Dataset;
use crate::dominance::{dominating_subspace, lex_cmp, points_equal};
use crate::error::{Error, Result};
use crate::metrics::Metrics;
use crate::point::PointId;
use crate::subspace::Subspace;

/// Safety cap on the number of pivots: `Merge` costs `O(k·N)` dominance
/// tests for `k` pivots, so a run-away stability loop on adversarial data
/// must be bounded. The paper assumes `k ≪ N`.
pub const DEFAULT_MAX_PIVOTS: usize = 256;

/// Monotone scoring function used to select pivot points.
///
/// Any monotone measure yields correct pivots (the argmin is always a
/// skyline point); the paper uses the Euclidean distance and notes that
/// "any measure can be applied". The alternatives exist for the
/// pivot-score ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PivotScore {
    /// Squared Euclidean distance to the dataset's minimum corner (the
    /// paper's choice, made negative-safe; see module docs).
    #[default]
    Euclidean,
    /// Sum of coordinates (SFS's scoring function).
    Sum,
    /// Minimum coordinate with sum tie-break (SaLSa's `minC`).
    MinCoordinate,
}

/// Configuration of the Merge phase.
#[derive(Debug, Clone)]
pub struct MergeConfig {
    /// Stability threshold `σ`. Meaningful range `1 < σ ≤ d`
    /// (Section 6.1). The paper's default is `round(d/3)`, clamped to 2.
    pub sigma: usize,
    /// Upper bound on the number of pivots (engineering guard; the paper
    /// leaves the loop unbounded).
    pub max_pivots: usize,
    /// Pivot scoring function (the paper's default is Euclidean).
    pub score: PivotScore,
}

impl MergeConfig {
    /// The paper's recommended configuration: `σ = round(d/3)`, clamped to
    /// the meaningful range `[2, d]` (Section 6.1: "the fastest σ … is
    /// around d/3").
    pub fn recommended(dims: usize) -> Self {
        let sigma = ((dims as f64) / 3.0).round() as usize;
        MergeConfig {
            sigma: sigma.clamp(2, dims.max(2)),
            max_pivots: DEFAULT_MAX_PIVOTS,
            score: PivotScore::Euclidean,
        }
    }

    /// Explicit stability threshold, validated against the dimensionality.
    pub fn with_sigma(sigma: usize, dims: usize) -> Result<Self> {
        if sigma <= 1 || sigma > dims {
            return Err(Error::InvalidStability { sigma, dims });
        }
        Ok(MergeConfig {
            sigma,
            max_pivots: DEFAULT_MAX_PIVOTS,
            score: PivotScore::Euclidean,
        })
    }
}

/// Output of the Merge phase.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The pivot points, in selection order. Every pivot is a skyline point.
    pub pivots: Vec<PointId>,
    /// Non-pivot points that joined the skyline during the phase because
    /// they are exact duplicates of a pivot.
    pub duplicate_skyline: Vec<PointId>,
    /// Points neither pruned nor confirmed: each is incomparable with every
    /// pivot. Order is unspecified.
    pub survivors: Vec<PointId>,
    /// Maximum dominating subspace `D_{q≺S}` of each survivor, parallel to
    /// `survivors`. Always non-empty.
    pub subspaces: Vec<Subspace>,
    /// `true` when the loop consumed the whole dataset — the skyline is
    /// then exactly `pivots ∪ duplicate_skyline` and no scan phase is
    /// needed.
    pub exhausted: bool,
    /// Number of iterations (pivots drawn).
    pub iterations: usize,
}

impl MergeOutcome {
    /// All skyline points confirmed so far (pivots plus duplicates),
    /// ascending.
    pub fn confirmed_skyline(&self) -> Vec<PointId> {
        let mut all: Vec<PointId> = self
            .pivots
            .iter()
            .chain(&self.duplicate_skyline)
            .copied()
            .collect();
        all.sort_unstable();
        all
    }

    /// Histogram of survivor counts per subspace size `1..=dims`
    /// (index 0 of the returned vector is size 1). This is the quantity
    /// plotted in Figures 2 and 6 of the paper.
    pub fn size_histogram(&self, dims: usize) -> Vec<usize> {
        let mut hist = vec![0usize; dims];
        for s in &self.subspaces {
            let size = s.size();
            debug_assert!(size >= 1 && size <= dims);
            hist[size - 1] += 1;
        }
        hist
    }
}

/// Run Algorithm 1 on `data`.
///
/// Every pivot-vs-point comparison is one dominance test and is counted in
/// `metrics` (the subspace computation *is* the dominance test: an empty
/// dominating subspace means the pivot weakly dominates the point).
pub fn merge(data: &Dataset, config: &MergeConfig, metrics: &mut Metrics) -> MergeOutcome {
    merge_traced(data, config, metrics, &mut NoopRecorder)
}

/// [`merge`] with tracing: wraps the phase in a `"merge"` span and emits
/// one [`Event::MergeIteration`] per pivot (pivot id, points pruned,
/// survivor count, the σ stability count, and the subspace-size buckets
/// the stability rule compares). Event payloads are only built when
/// `rec.enabled()`, so the no-op recorder adds one branch per *pivot*.
pub fn merge_traced(
    data: &Dataset,
    config: &MergeConfig,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
) -> MergeOutcome {
    merge_traced_cancel(data, config, metrics, rec, &CancelToken::none())
        .expect("the none token never cancels")
}

/// [`merge_traced`] with cooperative cancellation: the token is checked
/// once per pivot iteration (each iteration is a full pass over the
/// survivors, so per-iteration granularity bounds cancellation latency to
/// `O(N)` dominance tests).
pub fn merge_traced_cancel(
    data: &Dataset,
    config: &MergeConfig,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> std::result::Result<MergeOutcome, Cancelled> {
    rec.span_start("merge");
    let out = merge_inner(data, config, metrics, rec, cancel);
    rec.span_end("merge");
    out
}

fn merge_inner(
    data: &Dataset,
    config: &MergeConfig,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> std::result::Result<MergeOutcome, Cancelled> {
    let dims = data.dims();
    let n = data.len();

    // Score every point with the configured monotone measure. For the
    // Euclidean default the distance is taken to the dataset's min corner
    // (see module docs for why not the raw origin). `minC` alone is not
    // strictly monotone, so its tie-break adds the sum scaled into the
    // comparison via a lexicographic pair packed as (primary, sum).
    let scores: Vec<(f64, f64)> = match config.score {
        PivotScore::Euclidean => {
            let mut min_corner = vec![f64::INFINITY; dims];
            for (_, p) in data.iter() {
                for (m, v) in min_corner.iter_mut().zip(p) {
                    if *v < *m {
                        *m = *v;
                    }
                }
            }
            data.iter()
                .map(|(_, p)| {
                    (
                        p.iter()
                            .zip(&min_corner)
                            .map(|(v, m)| (v - m) * (v - m))
                            .sum(),
                        0.0,
                    )
                })
                .collect()
        }
        PivotScore::Sum => data.iter().map(|(_, p)| (p.iter().sum(), 0.0)).collect(),
        PivotScore::MinCoordinate => data
            .iter()
            .map(|(_, p)| {
                (
                    p.iter().copied().fold(f64::INFINITY, f64::min),
                    p.iter().sum(),
                )
            })
            .collect(),
    };

    let mut survivors: Vec<PointId> = (0..n as PointId).collect();
    let mut subspaces: Vec<Subspace> = vec![Subspace::EMPTY; n];
    let mut pivots = Vec::new();
    let mut duplicate_skyline = Vec::new();

    // Histogram of survivor subspace sizes from the previous iteration;
    // index s-1 holds the population of size s.
    let mut prev_hist = vec![0usize; dims];
    let mut iterations = 0usize;

    loop {
        cancel.check()?;
        if survivors.is_empty() || pivots.len() >= config.max_pivots {
            break;
        }

        // The surviving point with the minimal score is a skyline point.
        let (pivot_pos, &pivot) = survivors
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let (ka, kb) = (&scores[a as usize], &scores[b as usize]);
                ka.0.total_cmp(&kb.0)
                    .then_with(|| ka.1.total_cmp(&kb.1))
                    // Rounding-equal scores: the lexicographic tie-break
                    // guarantees the argmin is a skyline point even when a
                    // dominated point's score rounds equal to its
                    // dominator's.
                    .then_with(|| lex_cmp(data.point(a), data.point(b)))
                    .then(a.cmp(&b))
            })
            .expect("survivors is non-empty");
        survivors.swap_remove(pivot_pos);
        pivots.push(pivot);
        iterations += 1;
        let pivot_row = data.point(pivot);

        // Compare the pivot with every remaining point.
        let before_len = survivors.len();
        let mut hist = vec![0usize; dims];
        let mut kept = 0usize;
        for i in 0..survivors.len() {
            let q = survivors[i];
            let q_row = data.point(q);
            metrics.count_dt();
            let dsub = dominating_subspace(q_row, pivot_row);
            if dsub.is_empty() {
                // The pivot weakly dominates q: prune, but duplicates of
                // the pivot are themselves skyline points.
                if points_equal(q_row, pivot_row) {
                    duplicate_skyline.push(q);
                }
                continue;
            }
            let merged = subspaces[q as usize].union(dsub);
            subspaces[q as usize] = merged;
            hist[merged.size() - 1] += 1;
            survivors[kept] = q;
            kept += 1;
        }
        survivors.truncate(kept);

        // Stability: number of size buckets whose population is unchanged
        // since the previous iteration. Buckets empty in both iterations do
        // not count — otherwise never-populated high sizes would satisfy
        // any σ at high dimensionality after a single pivot.
        let stable = hist
            .iter()
            .zip(&prev_hist)
            .filter(|(now, before)| now == before && (**now > 0 || **before > 0))
            .count();
        // Secondary stop: the whole distribution is frozen. Without this, a
        // dataset whose survivors occupy fewer than σ distinct sizes (e.g.
        // any 2-D dataset, which has a single meaningful size) would burn
        // pivots until `max_pivots`.
        let frozen = hist == prev_hist;
        if rec.enabled() {
            rec.event(Event::MergeIteration {
                iteration: (iterations - 1) as u64,
                pivot: pivot as u64,
                pruned: (before_len - kept) as u64,
                survivors: kept as u64,
                stable: stable as u64,
                subspace_hist: hist.iter().map(|&c| c as u64).collect(),
            });
        }
        prev_hist = hist;
        if stable >= config.sigma || frozen {
            break;
        }
    }

    let out_subspaces: Vec<Subspace> = survivors.iter().map(|&q| subspaces[q as usize]).collect();
    debug_assert!(out_subspaces.iter().all(|s| !s.is_empty()));
    let exhausted = survivors.is_empty();
    Ok(MergeOutcome {
        pivots,
        duplicate_skyline,
        survivors,
        subspaces: out_subspaces,
        exhausted,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;

    fn small_dataset() -> Dataset {
        // 2-D hotels: (price, distance).
        Dataset::from_rows(&[
            [1.0, 9.0], // 0: skyline
            [2.0, 7.0], // 1: skyline
            [3.0, 8.0], // 2: dominated by 1
            [4.0, 4.0], // 3: skyline
            [5.0, 5.0], // 4: dominated by 3
            [9.0, 1.0], // 5: skyline
        ])
        .unwrap()
    }

    #[test]
    fn recommended_config_tracks_d_over_3() {
        assert_eq!(MergeConfig::recommended(8).sigma, 3);
        assert_eq!(MergeConfig::recommended(12).sigma, 4);
        assert_eq!(MergeConfig::recommended(24).sigma, 8);
        // Clamped to at least 2 for tiny d.
        assert_eq!(MergeConfig::recommended(2).sigma, 2);
        assert_eq!(MergeConfig::recommended(4).sigma, 2);
    }

    #[test]
    fn with_sigma_validates_range() {
        assert!(MergeConfig::with_sigma(1, 8).is_err());
        assert!(MergeConfig::with_sigma(9, 8).is_err());
        assert!(MergeConfig::with_sigma(3, 8).is_ok());
    }

    #[test]
    fn pivots_are_skyline_points() {
        let data = small_dataset();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::default(),
            },
            &mut m,
        );
        for &p in &out.pivots {
            for (q, row) in data.iter() {
                if q != p {
                    assert!(
                        !dominates(row, data.point(p)),
                        "pivot {p} is dominated by {q}"
                    );
                }
            }
        }
        assert!(!out.pivots.is_empty());
        assert!(m.dominance_tests > 0);
    }

    #[test]
    fn survivors_are_incomparable_with_pivots() {
        let data = small_dataset();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 2,
                score: PivotScore::default(),
            },
            &mut m,
        );
        for &q in &out.survivors {
            for &p in &out.pivots {
                assert!(!dominates(data.point(p), data.point(q)));
            }
        }
    }

    #[test]
    fn survivor_subspaces_match_definition() {
        let data = small_dataset();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 3,
                score: PivotScore::default(),
            },
            &mut m,
        );
        for (&q, &sub) in out.survivors.iter().zip(&out.subspaces) {
            let mut expected = Subspace::EMPTY;
            for &p in &out.pivots {
                expected = expected.union(dominating_subspace(data.point(q), data.point(p)));
            }
            assert_eq!(sub, expected, "survivor {q}");
            assert!(!sub.is_empty());
        }
    }

    #[test]
    fn exhausted_when_everything_pruned() {
        // One dominating point plus its dominated shadow copies.
        let data = Dataset::from_rows(&[[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]).unwrap();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert!(out.exhausted);
        assert_eq!(out.confirmed_skyline(), vec![0]);
        assert!(out.survivors.is_empty());
    }

    #[test]
    fn duplicates_of_pivot_join_the_skyline() {
        let data = Dataset::from_rows(&[[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]).unwrap();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert!(out.exhausted);
        assert_eq!(out.confirmed_skyline(), vec![0, 1]);
    }

    #[test]
    fn max_pivots_bounds_the_loop() {
        // Anti-correlated line: every point is a skyline point, so without
        // the cap the stability loop could draw many pivots.
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, 50.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 3,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert!(out.pivots.len() <= 3);
        assert_eq!(out.iterations, out.pivots.len());
    }

    #[test]
    fn size_histogram_counts_survivors() {
        let data = small_dataset();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 1,
                score: PivotScore::default(),
            },
            &mut m,
        );
        let hist = out.size_histogram(data.dims());
        assert_eq!(hist.iter().sum::<usize>(), out.survivors.len());
    }

    #[test]
    fn scoring_handles_negative_values() {
        // Negated (Max-preference) columns: min-corner shift keeps the
        // pivot selection monotone.
        let data = Dataset::from_rows(&[
            [-5.0, -1.0], // best in dim 0
            [-1.0, -5.0], // best in dim 1
            [-1.0, -1.0], // dominated by both
        ])
        .unwrap();
        let mut m = Metrics::new();
        let out = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert!(out.exhausted);
        assert_eq!(out.confirmed_skyline(), vec![0, 1]);
    }

    #[test]
    fn cancelled_token_aborts_the_merge() {
        let data = small_dataset();
        let mut m = Metrics::new();
        let token = CancelToken::manual();
        token.cancel();
        let out = merge_traced_cancel(
            &data,
            &MergeConfig::recommended(2),
            &mut m,
            &mut NoopRecorder,
            &token,
        );
        assert!(matches!(out, Err(Cancelled)));
    }

    #[test]
    fn dominance_test_count_is_pivots_times_survivors() {
        // With max_pivots = 1 the count is exactly n - 1.
        let data = small_dataset();
        let mut m = Metrics::new();
        let _ = merge(
            &data,
            &MergeConfig {
                sigma: 2,
                max_pivots: 1,
                score: PivotScore::default(),
            },
            &mut m,
        );
        assert_eq!(m.dominance_tests, (data.len() - 1) as u64);
    }
}

//! Error types for the skyline-core crate.

use std::fmt;

/// Errors produced while constructing or validating skyline inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The dataset has zero dimensions.
    ZeroDimensions,
    /// The dimensionality exceeds [`crate::subspace::MAX_DIMS`].
    TooManyDimensions {
        /// Requested dimensionality.
        requested: usize,
        /// Maximum supported dimensionality.
        max: usize,
    },
    /// A row does not match the dataset dimensionality.
    RowLength {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        got: usize,
        /// The dataset dimensionality.
        expected: usize,
    },
    /// A value is NaN, which has no place in a totally ordered domain.
    NotANumber {
        /// Row containing the NaN.
        row: usize,
        /// Dimension containing the NaN.
        dim: usize,
    },
    /// The flat buffer length is not a multiple of the dimensionality.
    BufferShape {
        /// Buffer length.
        len: usize,
        /// The dataset dimensionality.
        dims: usize,
    },
    /// A stability threshold outside the meaningful range `1 < sigma <= d`.
    InvalidStability {
        /// Requested threshold.
        sigma: usize,
        /// The dataset dimensionality.
        dims: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Error::ZeroDimensions => write!(f, "dataset must have at least one dimension"),
            Error::TooManyDimensions { requested, max } => {
                write!(
                    f,
                    "dimensionality {requested} exceeds the supported maximum {max}"
                )
            }
            Error::RowLength { row, got, expected } => {
                write!(
                    f,
                    "row {row} has {got} values but the dataset has {expected} dimensions"
                )
            }
            Error::NotANumber { row, dim } => {
                write!(
                    f,
                    "row {row}, dimension {dim} is NaN; skyline domains must be totally ordered"
                )
            }
            Error::BufferShape { len, dims } => {
                write!(
                    f,
                    "flat buffer of length {len} is not a multiple of dimensionality {dims}"
                )
            }
            Error::InvalidStability { sigma, dims } => {
                write!(f, "stability threshold {sigma} is outside the meaningful range 1 < sigma <= {dims}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for fallible skyline-core operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::RowLength {
            row: 3,
            got: 2,
            expected: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("row 3"));
        assert!(msg.contains('2'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::ZeroDimensions, Error::ZeroDimensions);
        assert_ne!(Error::ZeroDimensions, Error::NotANumber { row: 0, dim: 0 });
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Error::ZeroDimensions);
        assert!(!e.to_string().is_empty());
    }
}

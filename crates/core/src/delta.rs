//! Incremental skyline deltas — the O(|Δoutput|) view-maintenance layer
//! over [`crate::streaming::StreamingSkyline`].
//!
//! Every successful mutation of a maintained skyline moves its content
//! version from `v` to `v + 1` and changes the skyline membership of a
//! (usually tiny) set of points. A [`SkylineDelta`] captures exactly
//! that edge: the ids that **entered** the skyline, the ids that
//! **left** it, and the post-apply `version`. Consumers that hold a
//! materialised skyline at version `v` — a serving-layer result cache,
//! a cluster coordinator's per-shard answer, a replica tailing a
//! write-ahead log — can *patch* their copy forward instead of
//! recomputing from scratch, in time proportional to the change rather
//! than the data.
//!
//! The shape follows the delta-propagation discipline of incremental
//! view maintenance (DBSP-style Z-set updates specialised to a set of
//! point ids): deltas are **normalised** (`entered ∩ left = ∅`, both
//! sides sorted and duplicate-free), **composable** (a consecutive run
//! of deltas [coalesces](SkylineDelta::then) into one delta equal to
//! their sequential application), and **versioned** (applying a delta
//! to a skyline at any version other than `delta.version - 1` is a
//! protocol error that [`SkylineDelta::apply`] surfaces rather than
//! hides).

use crate::point::PointId;

/// The skyline-membership change of one mutation (or of a coalesced run
/// of mutations): ids that entered the skyline, ids that left it, and
/// the content version the producing structure reached.
///
/// Invariants (upheld by every constructor in this crate):
/// - `entered` and `left` are sorted ascending and duplicate-free;
/// - `entered ∩ left = ∅` — a point that both entered and left within
///   the covered mutation run nets out to nothing and is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylineDelta {
    /// Ids that entered the skyline, ascending.
    pub entered: Vec<PointId>,
    /// Ids that left the skyline (evicted, demoted, or deleted), ascending.
    pub left: Vec<PointId>,
    /// Content version after applying this delta.
    pub version: u64,
}

impl SkylineDelta {
    /// A delta that changes nothing, at `version`.
    pub fn empty(version: u64) -> SkylineDelta {
        SkylineDelta {
            entered: Vec::new(),
            left: Vec::new(),
            version,
        }
    }

    /// Normalise raw transition events into a delta: sort, deduplicate,
    /// and cancel ids that appear on both sides (entered then left —
    /// or vice versa — within one mutation is a net no-op).
    pub fn from_events(
        mut entered: Vec<PointId>,
        mut left: Vec<PointId>,
        version: u64,
    ) -> SkylineDelta {
        entered.sort_unstable();
        entered.dedup();
        left.sort_unstable();
        left.dedup();
        // Cancel the (rare) intersection with one sorted sweep.
        let mut e = Vec::with_capacity(entered.len());
        let mut l = Vec::with_capacity(left.len());
        let (mut i, mut j) = (0, 0);
        while i < entered.len() && j < left.len() {
            match entered[i].cmp(&left[j]) {
                std::cmp::Ordering::Less => {
                    e.push(entered[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    l.push(left[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        e.extend_from_slice(&entered[i..]);
        l.extend_from_slice(&left[j..]);
        SkylineDelta {
            entered: e,
            left: l,
            version,
        }
    }

    /// Whether the delta changes no membership (the version still moved:
    /// e.g. inserting a dominated point, or removing a shadowed one).
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty()
    }

    /// Patch a materialised skyline (sorted ascending ids, as every
    /// algorithm and [`crate::streaming::StreamingSkyline::skyline`]
    /// produce) forward by this delta, in place.
    ///
    /// Returns `false` — leaving `skyline` untouched — when the patch
    /// does not fit: an id in `left` is absent, or an id in `entered`
    /// is already present. That means the caller's copy is not at
    /// version `self.version - 1` and must be recomputed instead.
    pub fn apply(&self, skyline: &mut Vec<PointId>) -> bool {
        if self.is_empty() {
            return true;
        }
        debug_assert!(skyline.windows(2).all(|w| w[0] <= w[1]));
        if self
            .left
            .iter()
            .any(|id| skyline.binary_search(id).is_err())
            || self
                .entered
                .iter()
                .any(|id| skyline.binary_search(id).is_ok())
        {
            return false;
        }
        // One backward merge pass: drop `left`, splice in `entered`.
        let mut merged = Vec::with_capacity(skyline.len() + self.entered.len() - self.left.len());
        let mut enter = self.entered.iter().copied().peekable();
        let mut leave = self.left.iter().copied().peekable();
        for &id in skyline.iter() {
            while enter.peek().is_some_and(|&e| e < id) {
                merged.push(enter.next().expect("peeked"));
            }
            if leave.peek() == Some(&id) {
                leave.next();
                continue;
            }
            merged.push(id);
        }
        merged.extend(enter);
        *skyline = merged;
        true
    }

    /// Sequential composition: the single delta equivalent to applying
    /// `self` and then `next`. The result carries `next.version`.
    ///
    /// Composition follows set-difference algebra: an id that `self`
    /// says entered and `next` says left cancels (and symmetrically),
    /// because handles are never reused a point can oscillate in and
    /// out of the skyline across mutations and must net to its final
    /// membership change.
    pub fn then(&self, next: &SkylineDelta) -> SkylineDelta {
        let mut entered = self.entered.clone();
        let mut left = self.left.clone();
        for &id in &next.entered {
            // Entering after having left nets out; otherwise it is a
            // fresh entry.
            if let Ok(at) = left.binary_search(&id) {
                left.remove(at);
            } else {
                entered.push(id);
            }
        }
        for &id in &next.left {
            if let Some(at) = entered.iter().position(|&e| e == id) {
                entered.remove(at);
            } else {
                left.push(id);
            }
        }
        SkylineDelta::from_events(entered, left, next.version)
    }

    /// Coalesce a consecutive run of deltas into their sequential sum.
    /// Returns `None` for an empty run (there is no version to carry).
    pub fn coalesce(deltas: &[SkylineDelta]) -> Option<SkylineDelta> {
        let (first, rest) = deltas.split_first()?;
        Some(rest.iter().fold(first.clone(), |acc, d| acc.then(d)))
    }
}

/// Internal event buffer threaded through the streaming structure's
/// mutation paths: raw enter/leave transitions in occurrence order,
/// normalised into a [`SkylineDelta`] when the mutation commits.
#[derive(Debug, Default)]
pub(crate) struct DeltaEvents {
    pub(crate) entered: Vec<PointId>,
    pub(crate) left: Vec<PointId>,
}

impl DeltaEvents {
    pub(crate) fn into_delta(self, version: u64) -> SkylineDelta {
        SkylineDelta::from_events(self.entered, self.left, version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(entered: &[PointId], left: &[PointId], version: u64) -> SkylineDelta {
        SkylineDelta::from_events(entered.to_vec(), left.to_vec(), version)
    }

    #[test]
    fn from_events_normalises() {
        let delta = d(&[5, 1, 5, 3], &[2, 3, 2], 7);
        assert_eq!(delta.entered, vec![1, 5]);
        assert_eq!(delta.left, vec![2]);
        assert_eq!(delta.version, 7);
        assert!(!delta.is_empty());
        assert!(d(&[4], &[4], 1).is_empty(), "enter+leave cancels");
    }

    #[test]
    fn apply_patches_a_sorted_skyline() {
        let mut sky = vec![1, 3, 5, 9];
        assert!(d(&[0, 4, 10], &[3, 9], 2).apply(&mut sky));
        assert_eq!(sky, vec![0, 1, 4, 5, 10]);
        // Empty delta is always applicable.
        assert!(SkylineDelta::empty(3).apply(&mut sky));
        assert_eq!(sky, vec![0, 1, 4, 5, 10]);
    }

    #[test]
    fn apply_rejects_mismatched_bases() {
        let mut sky = vec![1, 3];
        // Leaving an id that is not present: wrong base.
        assert!(!d(&[], &[2], 2).apply(&mut sky));
        assert_eq!(sky, vec![1, 3], "failed patch must not mutate");
        // Entering an id that is already present: wrong base.
        assert!(!d(&[3], &[], 2).apply(&mut sky));
        assert_eq!(sky, vec![1, 3]);
    }

    #[test]
    fn then_composes_like_sequential_application() {
        let a = d(&[2, 7], &[4], 1);
        let b = d(&[4, 9], &[2], 2);
        let ab = a.then(&b);
        assert_eq!(ab.version, 2);

        let mut step = vec![0, 4];
        assert!(a.apply(&mut step));
        assert!(b.apply(&mut step));
        let mut sum = vec![0, 4];
        assert!(ab.apply(&mut sum));
        assert_eq!(step, sum);
        // 4 left then re-entered, 2 entered then left: both net out.
        assert_eq!(ab.entered, vec![7, 9]);
        assert_eq!(ab.left, Vec::<PointId>::new());
    }

    #[test]
    fn coalesce_folds_a_run() {
        assert_eq!(SkylineDelta::coalesce(&[]), None);
        let run = [d(&[1], &[], 1), d(&[2], &[1], 2), d(&[3], &[], 3)];
        let sum = SkylineDelta::coalesce(&run).unwrap();
        assert_eq!(sum, d(&[2, 3], &[], 3));
    }
}

//! Cooperative cancellation for long-running skyline computations.
//!
//! A [`CancelToken`] is threaded through the boosted pipeline and checked
//! at bounded intervals inside the dominance-test loops. The default
//! [`CancelToken::none`] token is a `None` internally, so code paths that
//! never cancel pay a single branch per check and no allocation.
//!
//! Tokens cancel for one of two reasons:
//!
//! - an explicit [`CancelToken::cancel`] call from another thread, or
//! - a deadline created with [`CancelToken::with_deadline`] passing.
//!
//! Checks are *cooperative*: a computation observes cancellation only at
//! its check points, so cancellation latency is bounded by the stride at
//! which the hot loops call [`CancelToken::check`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many loop iterations the hot paths run between two token checks.
///
/// Checking every iteration would put an atomic load (and possibly an
/// `Instant::now` syscall) in the innermost dominance loop; every 128
/// points keeps the overhead unmeasurable while bounding cancellation
/// latency to a few microseconds of work.
pub const CHECK_STRIDE: usize = 128;

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation token. Cloning is cheap (an `Arc` clone or a
/// `None` copy); all clones observe the same cancellation state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

/// The computation was cancelled before it completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "computation cancelled")
    }
}

impl std::error::Error for Cancelled {}

impl CancelToken {
    /// A token that never cancels. Checks against it are a single branch.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token that cancels once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            })),
        }
    }

    /// A token that cancels only via [`CancelToken::cancel`].
    pub fn manual() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// Cancel the token (and every clone of it). No-op on a
    /// [`CancelToken::none`] token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Return `Err(Cancelled)` if the token has fired; the hot-loop
    /// check point.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_cancels() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn manual_token_cancels_every_clone() {
        let t = CancelToken::manual();
        let c = t.clone();
        assert_eq!(c.check(), Ok(()));
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.check(), Err(Cancelled));
    }

    #[test]
    fn expired_deadline_cancels() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn generous_deadline_does_not_cancel_immediately() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn default_is_none() {
        assert!(!CancelToken::default().is_cancelled());
    }
}

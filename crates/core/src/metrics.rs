//! Instrumentation counters for skyline runs.
//!
//! The paper's primary evaluation metric is the *mean dominance test
//! number*: total dominance tests divided by the dataset cardinality
//! (Section 6). Every algorithm in this workspace threads a [`Metrics`]
//! value through its hot loops and bumps [`Metrics::count_dt`] once per
//! pairwise dominance test, exactly as the reference implementations count.

use std::time::Duration;

use skyline_obs::Histogram;

/// Counters collected during one skyline computation.
///
/// Besides the plain `u64` counters, two [`Histogram`]s capture the shape
/// of subset-index behaviour (query recursion depth, candidates returned
/// per query). Recording into them is one array-index increment per
/// *container query*, not per dominance test, so the struct stays cheap
/// enough to thread through every hot loop unconditionally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total number of pairwise dominance tests (any direction / arity).
    pub dominance_tests: u64,
    /// Number of `put` operations on a skyline container.
    pub container_puts: u64,
    /// Number of `candidates` queries on a skyline container.
    pub container_gets: u64,
    /// Total candidates returned across all container queries.
    pub candidates_returned: u64,
    /// Number of trie nodes visited by subset-index queries.
    pub index_nodes_visited: u64,
    /// Points pruned positionally (stop point / early termination), i.e.
    /// discarded without any dominance test.
    pub stop_pruned: u64,
    /// Distribution of subset-index query recursion depth.
    pub trie_depth: Histogram,
    /// Distribution of candidates returned per subset-index query.
    pub trie_candidates: Histogram,
}

impl Metrics {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record one pairwise dominance test.
    #[inline]
    pub fn count_dt(&mut self) {
        self.dominance_tests += 1;
    }

    /// Record `n` pairwise dominance tests at once.
    #[inline]
    pub fn count_dts(&mut self, n: u64) {
        self.dominance_tests += n;
    }

    /// The paper's *mean dominance test number* for a dataset of `n` points.
    ///
    /// Returns 0.0 for an empty dataset.
    pub fn mean_dominance_tests(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.dominance_tests as f64 / n as f64
        }
    }

    /// Fold another metrics snapshot into this one (e.g. merge-phase plus
    /// scan-phase counters of a boosted run).
    pub fn absorb(&mut self, other: &Metrics) {
        self.dominance_tests += other.dominance_tests;
        self.container_puts += other.container_puts;
        self.container_gets += other.container_gets;
        self.candidates_returned += other.candidates_returned;
        self.index_nodes_visited += other.index_nodes_visited;
        self.stop_pruned += other.stop_pruned;
        self.trie_depth.merge(&other.trie_depth);
        self.trie_candidates.merge(&other.trie_candidates);
    }
}

/// Result of one measured skyline run: the skyline, the counters, and the
/// elapsed wall-clock time.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// Ids of the skyline points, ascending.
    pub skyline: Vec<crate::point::PointId>,
    /// Counters collected during the run.
    pub metrics: Metrics,
    /// Elapsed wall-clock time of the computation (excluding data loading).
    pub elapsed: Duration,
    /// Cardinality of the input dataset.
    pub cardinality: usize,
}

impl RunMeasurement {
    /// The paper's DT metric for this run.
    pub fn mean_dominance_tests(&self) -> f64 {
        self.metrics.mean_dominance_tests(self.cardinality)
    }

    /// Elapsed time in fractional milliseconds (the paper's RT metric).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut m = Metrics::new();
        m.count_dt();
        m.count_dts(4);
        assert_eq!(m.dominance_tests, 5);
    }

    #[test]
    fn mean_dt() {
        let mut m = Metrics::new();
        m.count_dts(100);
        assert_eq!(m.mean_dominance_tests(50), 2.0);
        assert_eq!(m.mean_dominance_tests(0), 0.0);
    }

    #[test]
    fn absorb_sums_all_fields() {
        let mut a = Metrics {
            dominance_tests: 1,
            container_puts: 2,
            container_gets: 3,
            candidates_returned: 4,
            index_nodes_visited: 5,
            stop_pruned: 6,
            ..Metrics::default()
        };
        a.trie_depth.record(2);
        a.trie_candidates.record(7);
        let b = a.clone();
        a.absorb(&b);
        let mut expected = Metrics {
            dominance_tests: 2,
            container_puts: 4,
            container_gets: 6,
            candidates_returned: 8,
            index_nodes_visited: 10,
            stop_pruned: 12,
            ..Metrics::default()
        };
        expected.trie_depth.record(2);
        expected.trie_depth.record(2);
        expected.trie_candidates.record(7);
        expected.trie_candidates.record(7);
        assert_eq!(a, expected);
    }

    #[test]
    fn run_measurement_metrics() {
        let mut metrics = Metrics::new();
        metrics.count_dts(30);
        let run = RunMeasurement {
            skyline: vec![0, 1],
            metrics,
            elapsed: Duration::from_millis(250),
            cardinality: 10,
        };
        assert_eq!(run.mean_dominance_tests(), 3.0);
        assert!((run.elapsed_ms() - 250.0).abs() < 1e-9);
    }
}

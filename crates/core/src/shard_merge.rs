//! Cross-shard skyline merge over per-shard local skylines — the shared
//! final pass of both the in-process parallel engine
//! (`skyline-algos::parallel`) and the cluster coordinator
//! (`skyline-cluster`), lifted here so both produce byte-identical
//! answers from the same code.
//!
//! ## The algorithm
//!
//! Inputs are the local skylines of `shard_count` partitions of one
//! logical dataset. Within a shard the points are mutually non-dominated
//! by construction, so the global skyline is the union filtered by
//! *cross-shard* dominance tests only. The filter is the paper's subset
//! approach applied once more at merge scope:
//!
//! 1. **Subspace assignment** against a shared elite reference set
//!    `E`: every candidate `q` gets `D_{q≺E} = ∪ₑ D_{q≺e}` (one
//!    dominance test per elite; a candidate an elite strictly dominates
//!    is dropped on the spot). This is sound for Lemma 5.1 under *any*
//!    reference set — `p ≺ q` implies `D_{p≺e} ⊇ D_{q≺e}` per reference
//!    point, hence over the union — and because every candidate is
//!    referenced against the *same* `E`, the resulting subspaces are
//!    mutually comparable trie keys.
//! 2. **Presort** by SaLSa's `minC` (then coordinate sum, then
//!    lexicographic tie-breaks) so dominators precede their victims and
//!    the stop-point rule applies.
//! 3. **Scan** with one [`SubsetContainer`] per shard: a candidate
//!    queries every container except its own shard's (same-shard points
//!    cannot dominate each other), and `minC(q) > best_max` terminates
//!    the scan early, crediting the rest to `stop_pruned`.
//!
//! ## Distributed masks
//!
//! A remote shard can pre-compute part of step 1 locally: if shard `B`
//! reports each local skyline point's mask w.r.t. its own reference set
//! `E_B` (see [`reference_masks`]) and the coordinator takes the global
//! reference set to be `E = ∪_B E_B`, then for a candidate `q` from
//! shard `B` the shard-supplied *premask* already equals
//! `∪_{e ∈ E_B} D_{q≺e}`, and the coordinator only has to test `q`
//! against elites from *other* shards. [`EliteRef::shard`] carries the
//! elite's home shard for exactly this skip; the in-process engine tags
//! its elites [`NO_SHARD`] (they reference the whole dataset, not one
//! shard) so every candidate is tested against every elite, which
//! reproduces the pre-extraction behaviour of the parallel engine
//! dominance-test-for-dominance-test.

use crate::cancel::{CancelToken, Cancelled, CHECK_STRIDE};
use crate::container::{SkylineContainer, SubsetContainer};
use crate::dataset::Dataset;
use crate::dominance::{dominates, dominating_subspace, lex_cmp, points_equal};
use crate::metrics::Metrics;
use crate::point::{coordinate_sum, max_coordinate, min_coordinate, PointId};
use crate::subspace::Subspace;
use skyline_obs::Recorder;

/// Sentinel shard id for elites that reference the whole dataset rather
/// than one shard's skyline: such elites are never skipped during
/// subspace assignment.
pub const NO_SHARD: u32 = u32::MAX;

/// How many reference elites a skyline is summarised by (see
/// [`select_reference_elites`]). Mirrors the parallel engine's ghost
/// seed count so both layers agree on what "a few strong points" means.
pub const ELITE_SEEDS: usize = 16;

/// One merge candidate: a local skyline point of some shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeEntry {
    /// Caller-defined identity (global point id), returned in the output.
    pub key: u64,
    /// The shard whose local skyline the point belongs to.
    pub shard: u32,
    /// Mask already accumulated against this shard's own reference set
    /// ([`Subspace::from_bits(0)`] when the caller did no pre-work).
    pub premask: Subspace,
}

/// One reference elite for subspace assignment.
#[derive(Debug, Clone, Copy)]
pub struct EliteRef<'a> {
    /// Home shard of the elite, or [`NO_SHARD`] for dataset-global
    /// elites. Candidates from the same shard skip this elite: their
    /// premask already accounts for it, and same-shard points are
    /// mutually non-dominated.
    pub shard: u32,
    /// The elite's coordinates.
    pub row: &'a [f64],
}

/// Merge per-shard local skylines into the global skyline.
///
/// `row_of` resolves a [`MergeEntry::key`] to its coordinates; `elites`
/// is the shared reference set (see the module docs for the soundness
/// and skip rules). Returns the surviving keys in ascending order.
///
/// Counts one dominance test per (candidate × applicable elite) plus the
/// container-driven scan tests in `metrics`, and nests `"sort"` /
/// `"scan"` spans under whatever span the caller has open.
#[allow(clippy::too_many_arguments)]
pub fn merge_shard_skylines<'a, F>(
    dims: usize,
    shard_count: usize,
    entries_in: &[MergeEntry],
    elites: &[EliteRef<'a>],
    row_of: F,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<Vec<u64>, Cancelled>
where
    F: Fn(u64) -> &'a [f64],
{
    // Subspace assignment against the shared elite set, dropping points
    // an elite strictly dominates. Exact elite duplicates stay (an empty
    // subspace is a valid, maximally-conservative trie key).
    rec.span_start("sort");
    let mut entries: Vec<(u64, u32, Subspace)> = Vec::with_capacity(entries_in.len());
    for (scanned, entry) in entries_in.iter().enumerate() {
        if scanned % CHECK_STRIDE == 0 && cancel.check().is_err() {
            rec.span_end("sort");
            return Err(Cancelled);
        }
        let q_row = row_of(entry.key);
        let mut sub = entry.premask;
        let mut dominated = false;
        for e in elites {
            if e.shard == entry.shard {
                continue;
            }
            metrics.count_dt();
            let d = dominating_subspace(q_row, e.row);
            if d.is_empty() && !points_equal(q_row, e.row) {
                dominated = true; // an elite strictly dominates q
                break;
            }
            sub = sub.union(d);
        }
        if !dominated {
            entries.push((entry.key, entry.shard, sub));
        }
    }

    // Presort by SaLSa's minC function (sum, then lexicographic
    // tie-breaks so a dominator always precedes its victims even when
    // scores round equal).
    entries.sort_unstable_by(|&(a, _, _), &(b, _, _)| {
        let (pa, pb) = (row_of(a), row_of(b));
        min_coordinate(pa)
            .total_cmp(&min_coordinate(pb))
            .then_with(|| coordinate_sum(pa).total_cmp(&coordinate_sum(pb)))
            .then_with(|| lex_cmp(pa, pb))
    });
    rec.span_end("sort");

    rec.span_start("scan");
    let mut skyline: Vec<u64> = Vec::new();
    let mut best_max = f64::INFINITY;
    let mut containers: Vec<SubsetContainer> = (0..shard_count)
        .map(|_| SubsetContainer::new(dims))
        .collect();
    // Containers store the candidate's *index* in the sorted entry list
    // (keys may exceed the container's 32-bit id space).
    let mut candidates: Vec<PointId> = Vec::new();
    for (scanned, &(q, q_shard, q_sub)) in entries.iter().enumerate() {
        if scanned % CHECK_STRIDE == 0 && cancel.check().is_err() {
            rec.span_end("scan");
            return Err(Cancelled);
        }
        let q_row = row_of(q);
        if min_coordinate(q_row) > best_max {
            // The stop point strictly dominates q, and under minC
            // ordering every remaining candidate as well.
            metrics.stop_pruned += (entries.len() - scanned) as u64;
            break;
        }
        let mut dominated = false;
        'shards: for (s, container) in containers.iter().enumerate() {
            if s == q_shard as usize || container.is_empty() {
                continue;
            }
            candidates.clear();
            container.candidates_into(q_sub, &mut candidates, metrics);
            for &c in &candidates {
                metrics.count_dt();
                if dominates(row_of(entries[c as usize].0), q_row) {
                    dominated = true;
                    break 'shards;
                }
            }
        }
        best_max = best_max.min(max_coordinate(q_row));
        if !dominated {
            containers[q_shard as usize].put(scanned as PointId, q_sub, metrics);
            skyline.push(q);
        }
    }
    rec.span_end("scan");

    skyline.sort_unstable();
    Ok(skyline)
}

/// Deterministically pick reference elites among `ids` (row indices into
/// `data`): the `min(`[`ELITE_SEEDS`]`, ids.len() / 8)` points with the
/// smallest maximum coordinate — the best universal dominators and stop
/// points — with lexicographic-then-id tie-breaks so every replica of
/// this computation picks the same set. Returned in `ids` order.
pub fn select_reference_elites(data: &Dataset, ids: &[PointId]) -> Vec<PointId> {
    let count = ELITE_SEEDS.min(ids.len() / 8);
    if count == 0 {
        return Vec::new();
    }
    let mut keyed: Vec<(f64, PointId)> = ids
        .iter()
        .map(|&id| (max_coordinate(data.point(id)), id))
        .collect();
    keyed.sort_unstable_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| lex_cmp(data.point(a.1), data.point(b.1)))
            .then(a.1.cmp(&b.1))
    });
    keyed.truncate(count);
    let mut elites: Vec<PointId> = keyed.into_iter().map(|(_, id)| id).collect();
    elites.sort_unstable_by_key(|&id| ids.iter().position(|&x| x == id));
    elites
}

/// For every candidate in `ids`, its maximum dominating subspace w.r.t.
/// the reference rows `elite_ids` — `D_{q≺E} = ∪ₑ D_{q≺e}`. This is the
/// shard-local half of the distributed subspace assignment (module
/// docs): shards call it over their own skyline with their own elites,
/// the coordinator unions the remaining cross-shard contributions.
///
/// The candidates are assumed mutually non-dominated with the elites
/// (both drawn from one skyline), so no pruning happens here.
pub fn reference_masks(data: &Dataset, ids: &[PointId], elite_ids: &[PointId]) -> Vec<Subspace> {
    ids.iter()
        .map(|&q| {
            let q_row = data.point(q);
            let mut sub = Subspace::from_bits(0);
            for &e in elite_ids {
                sub = sub.union(dominating_subspace(q_row, data.point(e)));
            }
            sub
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyline_obs::{MemoryRecorder, NoopRecorder};

    fn pseudo_random_rows(n: usize, d: usize, salt: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|k| {
                        (((i * 23 + k * 41 + salt * 97) * 2654435761usize) % 887) as f64 / 887.0
                    })
                    .collect()
            })
            .collect()
    }

    fn brute_skyline(rows: &[Vec<f64>]) -> Vec<u64> {
        let data = Dataset::from_rows(rows).unwrap();
        (0..rows.len() as u32)
            .filter(|&q| {
                (0..rows.len() as u32).all(|p| p == q || !dominates(data.point(p), data.point(q)))
            })
            .map(|q| q as u64)
            .collect()
    }

    fn local_skyline(data: &Dataset, ids: &[PointId]) -> Vec<PointId> {
        ids.iter()
            .copied()
            .filter(|&q| {
                ids.iter()
                    .all(|&p| p == q || !dominates(data.point(p), data.point(q)))
            })
            .collect()
    }

    /// Partition rows round-robin, compute local skylines, merge, and
    /// compare against the brute-force global skyline.
    fn merge_matches_brute(n: usize, d: usize, shard_count: usize, salt: usize) {
        let rows = pseudo_random_rows(n, d, salt);
        let data = Dataset::from_rows(&rows).unwrap();
        let mut entries = Vec::new();
        let mut all_local: Vec<PointId> = Vec::new();
        for s in 0..shard_count {
            let ids: Vec<PointId> = (0..n as u32)
                .filter(|id| (*id as usize) % shard_count == s)
                .collect();
            for q in local_skyline(&data, &ids) {
                entries.push(MergeEntry {
                    key: q as u64,
                    shard: s as u32,
                    premask: Subspace::from_bits(0),
                });
                all_local.push(q);
            }
        }
        let elite_ids = select_reference_elites(&data, &all_local);
        let elites: Vec<EliteRef> = elite_ids
            .iter()
            .map(|&e| EliteRef {
                shard: NO_SHARD,
                row: data.point(e),
            })
            .collect();
        let mut metrics = Metrics::new();
        let merged = merge_shard_skylines(
            d,
            shard_count,
            &entries,
            &elites,
            |k| data.point(k as u32),
            &mut metrics,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(
            merged,
            brute_skyline(&rows),
            "n={n} d={d} shards={shard_count}"
        );
    }

    #[test]
    fn merge_matches_brute_force_across_shapes() {
        for (n, d) in [(300, 2), (400, 4), (250, 6)] {
            for shard_count in [2usize, 3, 5] {
                merge_matches_brute(n, d, shard_count, n + d);
            }
        }
    }

    #[test]
    fn empty_inputs_merge_to_empty() {
        let mut metrics = Metrics::new();
        let merged = merge_shard_skylines(
            3,
            2,
            &[],
            &[],
            |_| &[][..],
            &mut metrics,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn duplicates_across_shards_all_survive() {
        let rows = vec![vec![0.5, 0.5], vec![0.5, 0.5], vec![0.1, 0.9]];
        let data = Dataset::from_rows(&rows).unwrap();
        let entries = vec![
            MergeEntry {
                key: 0,
                shard: 0,
                premask: Subspace::from_bits(0),
            },
            MergeEntry {
                key: 1,
                shard: 1,
                premask: Subspace::from_bits(0),
            },
            MergeEntry {
                key: 2,
                shard: 1,
                premask: Subspace::from_bits(0),
            },
        ];
        // An elite that duplicates candidate 0/1 must not evict them.
        let elites = vec![EliteRef {
            shard: NO_SHARD,
            row: data.point(0),
        }];
        let mut metrics = Metrics::new();
        let merged = merge_shard_skylines(
            2,
            2,
            &entries,
            &elites,
            |k| data.point(k as u32),
            &mut metrics,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(merged, vec![0, 1, 2]);
    }

    #[test]
    fn elites_prune_dominated_candidates_during_assignment() {
        let rows = vec![vec![0.1, 0.1], vec![0.5, 0.5], vec![0.9, 0.05]];
        let data = Dataset::from_rows(&rows).unwrap();
        let entries = vec![
            MergeEntry {
                key: 1,
                shard: 0,
                premask: Subspace::from_bits(0),
            },
            MergeEntry {
                key: 2,
                shard: 1,
                premask: Subspace::from_bits(0),
            },
        ];
        let elites = vec![EliteRef {
            shard: NO_SHARD,
            row: data.point(0), // dominates candidate 1, not candidate 2
        }];
        let mut metrics = Metrics::new();
        let merged = merge_shard_skylines(
            2,
            2,
            &entries,
            &elites,
            |k| data.point(k as u32),
            &mut metrics,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(merged, vec![2]);
        assert!(metrics.dominance_tests >= 2);
    }

    /// The distributed split of subspace assignment (shard-local
    /// premasks + cross-shard elites, with same-shard elites skipped)
    /// yields the same skyline as referencing every candidate against
    /// the full elite union centrally.
    #[test]
    fn premask_split_matches_central_assignment() {
        let rows = pseudo_random_rows(400, 4, 7);
        let data = Dataset::from_rows(&rows).unwrap();
        let shard_count = 3usize;
        let mut shard_ids: Vec<Vec<PointId>> = vec![Vec::new(); shard_count];
        for id in 0..rows.len() as u32 {
            shard_ids[id as usize % shard_count].push(id);
        }

        let mut central_entries = Vec::new();
        let mut split_entries = Vec::new();
        let mut elite_union: Vec<EliteRef> = Vec::new();
        let mut central_elites: Vec<PointId> = Vec::new();
        for (s, ids) in shard_ids.iter().enumerate() {
            let local = local_skyline(&data, ids);
            let elite_ids = select_reference_elites(&data, &local);
            let masks = reference_masks(&data, &local, &elite_ids);
            for (&q, &mask) in local.iter().zip(masks.iter()) {
                central_entries.push(MergeEntry {
                    key: q as u64,
                    shard: s as u32,
                    premask: Subspace::from_bits(0),
                });
                split_entries.push(MergeEntry {
                    key: q as u64,
                    shard: s as u32,
                    premask: mask,
                });
            }
            for &e in &elite_ids {
                elite_union.push(EliteRef {
                    shard: s as u32,
                    row: data.point(e),
                });
                central_elites.push(e);
            }
        }
        let central_refs: Vec<EliteRef> = central_elites
            .iter()
            .map(|&e| EliteRef {
                shard: NO_SHARD,
                row: data.point(e),
            })
            .collect();

        let mut m1 = Metrics::new();
        let central = merge_shard_skylines(
            4,
            shard_count,
            &central_entries,
            &central_refs,
            |k| data.point(k as u32),
            &mut m1,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        let mut m2 = Metrics::new();
        let split = merge_shard_skylines(
            4,
            shard_count,
            &split_entries,
            &elite_union,
            |k| data.point(k as u32),
            &mut m2,
            &mut NoopRecorder,
            &CancelToken::none(),
        )
        .unwrap();
        assert_eq!(central, split);
        assert_eq!(central, brute_skyline(&rows));
        // The split does strictly less assignment work: same-shard
        // elites are skipped.
        assert!(m2.dominance_tests <= m1.dominance_tests);
    }

    #[test]
    fn spans_balance_and_cancellation_is_honoured() {
        let rows = pseudo_random_rows(600, 3, 11);
        let data = Dataset::from_rows(&rows).unwrap();
        let entries: Vec<MergeEntry> = (0..rows.len() as u32)
            .map(|id| MergeEntry {
                key: id as u64,
                shard: id % 2,
                premask: Subspace::from_bits(0),
            })
            .collect();
        let mut rec = MemoryRecorder::new();
        let mut metrics = Metrics::new();
        merge_shard_skylines(
            3,
            2,
            &entries,
            &[],
            |k| data.point(k as u32),
            &mut metrics,
            &mut rec,
            &CancelToken::none(),
        )
        .unwrap();
        assert!(rec.open_spans().is_empty(), "unbalanced spans");

        let token = CancelToken::manual();
        token.cancel();
        let mut m2 = Metrics::new();
        assert!(merge_shard_skylines(
            3,
            2,
            &entries,
            &[],
            |k| data.point(k as u32),
            &mut m2,
            &mut NoopRecorder,
            &token,
        )
        .is_err());
    }

    #[test]
    fn reference_elites_are_deterministic_and_bounded() {
        let rows = pseudo_random_rows(200, 3, 5);
        let data = Dataset::from_rows(&rows).unwrap();
        let ids: Vec<PointId> = (0..200).collect();
        let a = select_reference_elites(&data, &ids);
        let b = select_reference_elites(&data, &ids);
        assert_eq!(a, b);
        assert_eq!(a.len(), ELITE_SEEDS.min(ids.len() / 8));
        // Tiny candidate lists yield no elites rather than panicking.
        assert!(select_reference_elites(&data, &ids[..7]).is_empty());
    }
}

//! # skyline-core
//!
//! A faithful, production-quality Rust implementation of
//! *“Subset Approach to Efficient Skyline Computation”*
//! (Dominique H. Li, EDBT 2023).
//!
//! The paper's contribution is a **generic component** that boosts
//! sorting-based skyline algorithms by storing confirmed skyline points in
//! a *subset-query index* keyed by *maximum dominating subspaces*, so that
//! each testing point is dominance-tested only against the few skyline
//! points that can possibly dominate it. This crate provides:
//!
//! - the data model: [`dataset::Dataset`], [`point`], [`subspace::Subspace`];
//! - instrumented dominance primitives: [`dominance`], [`metrics::Metrics`];
//! - **Algorithm 1** (subspace union / pivot selection): [`merge`];
//! - **Algorithms 2–4** (the subset-query trie): [`subset_index`];
//! - the container abstraction and the boosted scan driver:
//!   [`container`], [`boost`].
//!
//! Concrete skyline algorithms (SFS, SaLSa, SDI, BSkyTree, …) live in the
//! companion `skyline-algos` crate; synthetic benchmark data in
//! `skyline-data`.
//!
//! ## Quick example
//!
//! ```
//! use skyline_core::prelude::*;
//!
//! // Hotels: (price, distance-to-beach), both minimised.
//! let data = Dataset::from_rows(&[
//!     [50.0, 8.0],
//!     [65.0, 3.0],
//!     [80.0, 2.0],
//!     [90.0, 7.0], // dominated by the first hotel
//! ]).unwrap();
//!
//! let config = BoostConfig {
//!     merge: MergeConfig::recommended(data.dims()),
//!     sort: SortStrategy::Sum,
//!     use_stop_point: false,
//! };
//! let mut metrics = Metrics::new();
//! let result = boosted_skyline(&data, &config, &mut metrics);
//! assert_eq!(result.skyline, vec![0, 1, 2]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boost;
pub mod cancel;
pub mod changelog;
pub mod container;
pub mod dataset;
pub mod delta;
pub mod dominance;
pub mod error;
pub mod merge;
pub mod metrics;
pub mod point;
pub mod shard_merge;
pub mod streaming;
pub mod subset_index;
pub mod subspace;
pub mod tuner;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::boost::{
        boosted_skyline, boosted_skyline_cancellable, boosted_skyline_with, BoostConfig,
        BoostOutcome, SortStrategy,
    };
    pub use crate::cancel::{CancelToken, Cancelled};
    pub use crate::changelog::{ChangeLog, ChangeOp, ChangeRecord, FeedBatch, FeedGone};
    pub use crate::container::{ListContainer, SkylineContainer, SubsetContainer};
    pub use crate::dataset::Dataset;
    pub use crate::delta::SkylineDelta;
    pub use crate::dominance::{dominance, dominates, dominating_subspace, DomRelation};
    pub use crate::error::{Error, Result};
    pub use crate::merge::{merge, MergeConfig, MergeOutcome, PivotScore};
    pub use crate::metrics::{Metrics, RunMeasurement};
    pub use crate::point::{PointId, Preference};
    pub use crate::shard_merge::{
        merge_shard_skylines, reference_masks, select_reference_elites, EliteRef, MergeEntry,
        NO_SHARD,
    };
    pub use crate::streaming::StreamingSkyline;
    pub use crate::subset_index::{SortedSubsetIndex, SubsetIndex};
    pub use crate::subspace::Subspace;
    pub use crate::tuner::{tune_sigma, TunerConfig, TunerReport};
}

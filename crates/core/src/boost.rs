//! The boosted presorted-scan driver — Section 1's application sketch:
//!
//! 1. run [`crate::merge`] to pick pivot points and assign every surviving
//!    point its maximum dominating subspace;
//! 2. run a sorting-based skyline scan in which the skyline is kept in a
//!    [`SkylineContainer`]: confirmed points are `put` with their subspace,
//!    and each testing point is compared only against the container's
//!    `candidates` for its subspace;
//! 3. the skyline is the merge-phase skyline plus the scan-phase
//!    confirmations.
//!
//! With a [`crate::container::SubsetContainer`] this yields the paper's
//! SFS-Subset / SaLSa-Subset; with a [`crate::container::ListContainer`]
//! it degenerates to the plain algorithm run on the merge survivors.
//!
//! The driver is correct for any *monotone* sort strategy: if `p ≺ q` then
//! `key(p) < key(q)`, so every dominator of a testing point is already
//! confirmed when the point is tested (the presorting condition of
//! Lemma 5.1).

use skyline_obs::{NoopRecorder, Recorder};

use crate::cancel::{CancelToken, Cancelled, CHECK_STRIDE};
use crate::container::{SkylineContainer, SubsetContainer};
use crate::dataset::Dataset;
use crate::dominance::{dominates, lex_cmp};
use crate::merge::{merge_traced_cancel, MergeConfig, MergeOutcome};
use crate::metrics::Metrics;
use crate::point::{coordinate_sum, max_coordinate, min_coordinate, PointId};
use crate::subspace::Subspace;

/// Monotone presorting strategies for the scan phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortStrategy {
    /// Sum of coordinates — SFS's classic scoring function.
    Sum,
    /// Minimum coordinate with sum tie-break — SaLSa's `minC` function.
    MinCoordinate,
    /// Squared Euclidean distance to the dataset's minimum corner — the
    /// scoring the paper uses for pivot selection; usable as a scan order
    /// too.
    Euclidean,
}

impl SortStrategy {
    /// Sorting key of one point: `(primary, secondary)` with
    /// lexicographic order. Monotone w.r.t. dominance for each strategy
    /// (for `Euclidean` this relies on the min-corner shift, see
    /// [`crate::merge`] module docs).
    fn key(self, point: &[f64], min_corner: &[f64]) -> (f64, f64) {
        match self {
            SortStrategy::Sum => (coordinate_sum(point), 0.0),
            SortStrategy::MinCoordinate => (min_coordinate(point), coordinate_sum(point)),
            SortStrategy::Euclidean => (
                point
                    .iter()
                    .zip(min_corner)
                    .map(|(v, m)| (v - m) * (v - m))
                    .sum(),
                0.0,
            ),
        }
    }
}

/// Configuration of a boosted run.
#[derive(Debug, Clone)]
pub struct BoostConfig {
    /// Merge-phase configuration (stability threshold, pivot cap).
    pub merge: MergeConfig,
    /// Scan-phase presorting strategy.
    pub sort: SortStrategy,
    /// Enable SaLSa's stop-point rule: once the `minC` of the next testing
    /// point strictly exceeds the smallest `maxC` seen so far, every
    /// remaining point is provably dominated and the scan stops.
    pub use_stop_point: bool,
}

/// Detailed result of a boosted run.
#[derive(Debug, Clone)]
pub struct BoostOutcome {
    /// Ids of the skyline points, ascending.
    pub skyline: Vec<PointId>,
    /// Number of merge-phase pivots used.
    pub pivots: usize,
    /// Whether the merge phase alone finished the computation.
    pub merge_exhausted: bool,
}

/// Run the boosted skyline computation with the paper's subset container.
pub fn boosted_skyline(
    data: &Dataset,
    config: &BoostConfig,
    metrics: &mut Metrics,
) -> BoostOutcome {
    let mut container: SubsetContainer = SubsetContainer::new(data.dims());
    boosted_skyline_with(data, config, &mut container, metrics)
}

/// [`boosted_skyline`] with tracing (see [`boosted_skyline_traced_with`]).
pub fn boosted_skyline_traced(
    data: &Dataset,
    config: &BoostConfig,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
) -> BoostOutcome {
    let mut container: SubsetContainer = SubsetContainer::new(data.dims());
    boosted_skyline_traced_with(data, config, &mut container, metrics, rec)
}

/// Run the boosted computation with an arbitrary container (used by the
/// container ablation and by the degenerate list variant).
pub fn boosted_skyline_with(
    data: &Dataset,
    config: &BoostConfig,
    container: &mut dyn SkylineContainer,
    metrics: &mut Metrics,
) -> BoostOutcome {
    boosted_skyline_traced_with(data, config, container, metrics, &mut NoopRecorder)
}

/// [`boosted_skyline_with`] with tracing: the merge phase runs under a
/// `"merge"` span with per-iteration events, the survivor presort under a
/// `"sort"` span, and the container-filtered scan under a `"scan"` span.
/// Recorder calls happen only at these phase boundaries, never inside the
/// per-point loop.
pub fn boosted_skyline_traced_with(
    data: &Dataset,
    config: &BoostConfig,
    container: &mut dyn SkylineContainer,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
) -> BoostOutcome {
    boosted_skyline_cancellable_with(data, config, container, metrics, rec, &CancelToken::none())
        .expect("the none token never cancels")
}

/// Cancellable boosted run with the paper's subset container. The token
/// is checked once per merge pivot and every [`CHECK_STRIDE`] points of
/// the scan phase; on cancellation `Err(Cancelled)` is returned and the
/// partial state is discarded.
pub fn boosted_skyline_cancellable(
    data: &Dataset,
    config: &BoostConfig,
    metrics: &mut Metrics,
    cancel: &CancelToken,
) -> Result<BoostOutcome, Cancelled> {
    let mut container: SubsetContainer = SubsetContainer::new(data.dims());
    boosted_skyline_cancellable_with(
        data,
        config,
        &mut container,
        metrics,
        &mut NoopRecorder,
        cancel,
    )
}

/// [`boosted_skyline_traced_with`] with cooperative cancellation — the
/// full-generality entry point the serving layer's deadline support is
/// built on.
pub fn boosted_skyline_cancellable_with(
    data: &Dataset,
    config: &BoostConfig,
    container: &mut dyn SkylineContainer,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<BoostOutcome, Cancelled> {
    let outcome = merge_traced_cancel(data, &config.merge, metrics, rec, cancel)?;
    let mut skyline = outcome.confirmed_skyline();
    if outcome.exhausted {
        return Ok(BoostOutcome {
            skyline,
            pivots: outcome.pivots.len(),
            merge_exhausted: true,
        });
    }
    scan_survivors(
        data,
        config,
        &outcome,
        container,
        &mut skyline,
        metrics,
        rec,
        cancel,
    )?;
    skyline.sort_unstable();
    Ok(BoostOutcome {
        skyline,
        pivots: outcome.pivots.len(),
        merge_exhausted: false,
    })
}

/// The scan phase: presort the merge survivors and filter them through the
/// container.
#[allow(clippy::too_many_arguments)]
fn scan_survivors(
    data: &Dataset,
    config: &BoostConfig,
    outcome: &MergeOutcome,
    container: &mut dyn SkylineContainer,
    skyline: &mut Vec<PointId>,
    metrics: &mut Metrics,
    rec: &mut dyn Recorder,
    cancel: &CancelToken,
) -> Result<(), Cancelled> {
    rec.span_start("sort");
    let dims = data.dims();
    let mut min_corner = vec![f64::INFINITY; dims];
    if config.sort == SortStrategy::Euclidean {
        for (_, p) in data.iter() {
            for (m, v) in min_corner.iter_mut().zip(p) {
                if *v < *m {
                    *m = *v;
                }
            }
        }
    }

    // Presort survivor indices (positions into outcome.survivors, so the
    // parallel subspace vector stays addressable).
    let mut order: Vec<u32> = (0..outcome.survivors.len() as u32).collect();
    let keys: Vec<(f64, f64)> = outcome
        .survivors
        .iter()
        .map(|&q| config.sort.key(data.point(q), &min_corner))
        .collect();
    order.sort_unstable_by(|&a, &b| {
        let (ka, kb) = (&keys[a as usize], &keys[b as usize]);
        ka.0.total_cmp(&kb.0)
            .then_with(|| ka.1.total_cmp(&kb.1))
            // Rounding-equal keys: keep dominators first (see `lex_cmp`).
            .then_with(|| {
                lex_cmp(
                    data.point(outcome.survivors[a as usize]),
                    data.point(outcome.survivors[b as usize]),
                )
            })
    });
    rec.span_end("sort");
    rec.span_start("scan");

    // Stop-point state: smallest maxC over every point seen so far (the
    // merge-phase skyline counts as seen).
    let mut best_max = f64::INFINITY;
    if config.use_stop_point {
        for &p in skyline.iter() {
            best_max = best_max.min(max_coordinate(data.point(p)));
        }
    }

    let mut candidates: Vec<PointId> = Vec::new();
    for (scanned, &pos) in order.iter().enumerate() {
        if scanned % CHECK_STRIDE == 0 && cancel.check().is_err() {
            rec.span_end("scan");
            return Err(Cancelled);
        }
        let q = outcome.survivors[pos as usize];
        let q_row = data.point(q);
        if config.use_stop_point && min_coordinate(q_row) > best_max {
            // This point is strictly dominated by the stop point (every
            // coordinate of the stop point is below every coordinate of
            // q). Cutting the *rest* of the scan is additionally sound
            // only under minC ordering, where all remaining points have
            // an even larger minC; under other sort orders only the
            // current point may be skipped.
            if config.sort == SortStrategy::MinCoordinate {
                metrics.stop_pruned += (order.len() - scanned) as u64;
                break;
            }
            metrics.stop_pruned += 1;
            continue;
        }
        let q_sub: Subspace = outcome.subspaces[pos as usize];
        candidates.clear();
        container.candidates_into(q_sub, &mut candidates, metrics);
        let mut dominated = false;
        for &c in &candidates {
            metrics.count_dt();
            if dominates(data.point(c), q_row) {
                dominated = true;
                break;
            }
        }
        if config.use_stop_point {
            best_max = best_max.min(max_coordinate(q_row));
        }
        if !dominated {
            container.put(q, q_sub, metrics);
            skyline.push(q);
        }
    }
    rec.span_end("scan");
    Ok(())
}

/// Minimal deterministic PRNG for the fuzz tests below. `skyline-core`
/// sits at the bottom of the workspace, so it cannot dev-depend on
/// `skyline-data`'s generator without a cycle; splitmix64 is plenty for
/// shaking out scan-order edge cases.
#[cfg(test)]
mod test_rng {
    pub struct TestRng(u64);

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `0..bound` (modulo bias is irrelevant at these sizes).
        pub fn gen_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }

        pub fn gen_bool(&mut self, p: f64) -> bool {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ListContainer;
    use crate::dominance::dominance;
    use crate::dominance::DomRelation;
    use crate::merge::PivotScore;

    /// Quadratic reference skyline.
    fn naive_skyline(data: &Dataset) -> Vec<PointId> {
        let mut out = Vec::new();
        for (i, p) in data.iter() {
            let mut dominated = false;
            for (j, q) in data.iter() {
                if i != j && dominance(q, p) == DomRelation::Dominates {
                    dominated = true;
                    break;
                }
            }
            if !dominated {
                out.push(i);
            }
        }
        out
    }

    fn configs(dims: usize) -> Vec<BoostConfig> {
        let merge = MergeConfig::recommended(dims);
        vec![
            BoostConfig {
                merge: merge.clone(),
                sort: SortStrategy::Sum,
                use_stop_point: false,
            },
            BoostConfig {
                merge: merge.clone(),
                sort: SortStrategy::MinCoordinate,
                use_stop_point: true,
            },
            BoostConfig {
                merge,
                sort: SortStrategy::Euclidean,
                use_stop_point: false,
            },
        ]
    }

    fn grid_dataset() -> Dataset {
        // 4-D grid with plenty of duplicates and dominated points.
        let mut rows = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        rows.push([a as f64, b as f64, c as f64, d as f64]);
                    }
                }
            }
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_naive_on_grid_for_all_configs() {
        let data = grid_dataset();
        let expected = naive_skyline(&data);
        for config in configs(data.dims()) {
            let mut m = Metrics::new();
            let out = boosted_skyline(&data, &config, &mut m);
            assert_eq!(out.skyline, expected, "config {config:?}");
        }
    }

    #[test]
    fn list_container_variant_matches_subset_variant() {
        let data = grid_dataset();
        for config in configs(data.dims()) {
            let mut m1 = Metrics::new();
            let mut m2 = Metrics::new();
            let mut list = ListContainer::new();
            let with_list = boosted_skyline_with(&data, &config, &mut list, &mut m1);
            let with_subset = boosted_skyline(&data, &config, &mut m2);
            assert_eq!(with_list.skyline, with_subset.skyline);
            // The subset container can only reduce candidate volume.
            assert!(m2.candidates_returned <= m1.candidates_returned);
        }
    }

    #[test]
    fn anti_correlated_line_is_all_skyline() {
        let rows: Vec<[f64; 2]> = (0..40).map(|i| [i as f64, 39.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        for config in configs(2) {
            let mut m = Metrics::new();
            let out = boosted_skyline(&data, &config, &mut m);
            assert_eq!(out.skyline.len(), 40, "config {config:?}");
        }
    }

    #[test]
    fn stop_point_prunes_dominated_tail() {
        // Three skyline points plus a dominated cloud that survives the
        // single-pivot merge (it beats the pivot in dimension 1) but whose
        // minC exceeds the best maxC once [0.45, 0.45] is confirmed — so
        // the stop rule must cut it without dominance tests.
        let mut rows = vec![[0.05, 0.5], [0.5, 0.05], [0.45, 0.45]];
        for i in 0..50 {
            rows.push([2.0 + i as f64, 0.46]);
        }
        let data = Dataset::from_rows(&rows).unwrap();
        let config = BoostConfig {
            merge: MergeConfig {
                sigma: 2,
                max_pivots: 1,
                score: PivotScore::default(),
            },
            sort: SortStrategy::MinCoordinate,
            use_stop_point: true,
        };
        let mut m = Metrics::new();
        let out = boosted_skyline(&data, &config, &mut m);
        assert_eq!(out.skyline, vec![0, 1, 2]);
        assert!(m.stop_pruned > 0, "stop point should fire");
    }

    #[test]
    fn duplicates_are_all_reported() {
        let data =
            Dataset::from_rows(&[[0.5, 0.5], [0.5, 0.5], [0.1, 0.9], [0.1, 0.9], [0.9, 0.9]])
                .unwrap();
        let expected = naive_skyline(&data);
        assert_eq!(expected, vec![0, 1, 2, 3]);
        for config in configs(2) {
            let mut m = Metrics::new();
            let out = boosted_skyline(&data, &config, &mut m);
            assert_eq!(out.skyline, expected, "config {config:?}");
        }
    }

    #[test]
    fn merge_exhaustion_short_circuits() {
        let data = Dataset::from_rows(&[[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]).unwrap();
        let config = BoostConfig {
            merge: MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::default(),
            },
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        let mut m = Metrics::new();
        let out = boosted_skyline(&data, &config, &mut m);
        assert!(out.merge_exhausted);
        assert_eq!(out.skyline, vec![0]);
    }

    #[test]
    fn single_point_dataset() {
        let data = Dataset::from_rows(&[[3.0, 4.0, 5.0]]).unwrap();
        for config in configs(3) {
            let mut m = Metrics::new();
            let out = boosted_skyline(&data, &config, &mut m);
            assert_eq!(out.skyline, vec![0]);
        }
    }

    #[test]
    fn cancellable_run_matches_plain_and_honours_the_token() {
        let data = grid_dataset();
        for config in configs(data.dims()) {
            let mut m1 = Metrics::new();
            let mut m2 = Metrics::new();
            let plain = boosted_skyline(&data, &config, &mut m1);
            let free = boosted_skyline_cancellable(&data, &config, &mut m2, &CancelToken::none())
                .expect("none token never cancels");
            assert_eq!(plain.skyline, free.skyline);

            let token = CancelToken::manual();
            token.cancel();
            let mut m3 = Metrics::new();
            assert!(
                boosted_skyline_cancellable(&data, &config, &mut m3, &token).is_err(),
                "cancelled token must abort"
            );
        }
    }

    #[test]
    fn randomised_agreement_with_naive() {
        let mut rng = crate::boost::test_rng::TestRng::seed_from_u64(42);
        for &(n, d) in &[(60usize, 2usize), (80, 3), (120, 5), (64, 8)] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| (rng.gen_below(12) as f64) / 4.0).collect())
                .collect();
            let data = Dataset::from_rows(&rows).unwrap();
            let expected = naive_skyline(&data);
            for config in configs(d) {
                let mut m = Metrics::new();
                let out = boosted_skyline(&data, &config, &mut m);
                assert_eq!(out.skyline, expected, "n={n} d={d} config={config:?}");
            }
        }
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;
    use crate::dominance::{dominance, DomRelation};
    use crate::merge::PivotScore;

    fn naive(data: &Dataset) -> Vec<PointId> {
        let mut out = Vec::new();
        for (i, p) in data.iter() {
            let mut dom = false;
            for (j, q) in data.iter() {
                if i != j && dominance(q, p) == DomRelation::Dominates {
                    dom = true;
                    break;
                }
            }
            if !dom {
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn stop_point_with_sum_sort_fuzz() {
        for seed in 0..200u64 {
            let mut rng = crate::boost::test_rng::TestRng::seed_from_u64(seed);
            let n = 40;
            let d = 3;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| (rng.gen_below(20) as f64) / 4.0).collect())
                .collect();
            let data = Dataset::from_rows(&rows).unwrap();
            let expected = naive(&data);
            for sort in [SortStrategy::Sum, SortStrategy::Euclidean] {
                let config = BoostConfig {
                    merge: MergeConfig {
                        sigma: 2,
                        max_pivots: 2,
                        score: PivotScore::default(),
                    },
                    sort,
                    use_stop_point: true,
                };
                let mut m = Metrics::new();
                let out = boosted_skyline(&data, &config, &mut m);
                assert_eq!(
                    out.skyline, expected,
                    "seed {seed} sort {sort:?} rows {rows:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod audit_tests2 {
    use super::*;
    use crate::dominance::{dominance, DomRelation};
    use crate::merge::PivotScore;

    fn naive(data: &Dataset) -> Vec<PointId> {
        let mut out = Vec::new();
        for (i, p) in data.iter() {
            let mut dom = false;
            for (j, q) in data.iter() {
                if i != j && dominance(q, p) == DomRelation::Dominates {
                    dom = true;
                    break;
                }
            }
            if !dom {
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn stop_point_sum_sort_heavy_tail() {
        let mut failures = 0;
        for seed in 0..2000u64 {
            let mut rng = crate::boost::test_rng::TestRng::seed_from_u64(seed);
            let n = 30;
            let d = 2 + rng.gen_below(3) as usize;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..d)
                        .map(|_| {
                            if rng.gen_bool(0.3) {
                                rng.gen_below(5) as f64 * 10.0
                            } else {
                                rng.gen_below(10) as f64 / 10.0
                            }
                        })
                        .collect()
                })
                .collect();
            let data = Dataset::from_rows(&rows).unwrap();
            let expected = naive(&data);
            for sort in [SortStrategy::Sum, SortStrategy::Euclidean] {
                let config = BoostConfig {
                    merge: MergeConfig {
                        sigma: 2,
                        max_pivots: 1 + rng.gen_below(3) as usize,
                        score: PivotScore::default(),
                    },
                    sort,
                    use_stop_point: true,
                };
                let mut m = Metrics::new();
                let out = boosted_skyline(&data, &config, &mut m);
                if out.skyline != expected {
                    failures += 1;
                    if failures < 3 {
                        eprintln!("MISMATCH seed {seed} d {d} sort {sort:?}\nrows {rows:?}\ngot {:?}\nexp {:?}", out.skyline, expected);
                    }
                }
            }
        }
        assert_eq!(failures, 0, "{failures} mismatches");
    }
}

#[cfg(test)]
mod audit_tests3 {
    use super::*;
    use crate::merge::PivotScore;

    #[test]
    fn infinite_coordinates() {
        // point 1 dominates point 0; both have NaN Euclidean scores.
        let data = Dataset::from_rows(&[[f64::INFINITY, 5.0], [f64::INFINITY, 1.0]]).unwrap();
        let config = BoostConfig {
            merge: MergeConfig {
                sigma: 2,
                max_pivots: 16,
                score: PivotScore::Euclidean,
            },
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        let mut m = Metrics::new();
        let out = boosted_skyline(&data, &config, &mut m);
        assert_eq!(out.skyline, vec![1], "got {:?}", out.skyline);
    }

    #[test]
    fn sum_absorption() {
        // q=[1e200,0.5] dominates p=[1e200,1.0] but sum keys are equal.
        let data = Dataset::from_rows(&[[1e200, 1.0], [1e200, 0.5], [0.0, 3.0]]).unwrap();
        let config = BoostConfig {
            merge: MergeConfig {
                sigma: 2,
                max_pivots: 1,
                score: PivotScore::Euclidean,
            },
            sort: SortStrategy::Sum,
            use_stop_point: false,
        };
        let mut m = Metrics::new();
        let out = boosted_skyline(&data, &config, &mut m);
        assert_eq!(out.skyline, vec![1, 2], "got {:?}", out.skyline);
    }
}

//! The per-dataset change log: a dense, versioned record stream feeding
//! change feeds and read replicas.
//!
//! Every effective mutation of a maintained skyline moves its content
//! version by exactly +1 and yields a [`SkylineDelta`]
//! (enter/leave sets). The change log keeps a bounded suffix of those
//! per-version records — each paired with the *operation* that produced
//! it, so a follower can rebuild the full point set, not just skyline
//! membership — and serves cursor reads over it:
//!
//! - A **cursor** is simply the last version the consumer has applied.
//!   [`ChangeLog::since`] returns the records strictly after it, in
//!   version order, plus the advanced cursor. Versions are dense, so a
//!   consumer can detect gaps (`record.version != applied + 1`) and
//!   duplicates (`record.version <= applied`) by arithmetic alone —
//!   at-least-once delivery is safe because re-applying an old record
//!   is detectable and skippable.
//! - Retention is bounded (`max_records`) and restart-bounded: after a
//!   snapshot+truncate WAL compaction only the records the WAL still
//!   holds can be rebuilt, so the log's **oldest retained version**
//!   advances. A cursor older than that cannot be served without a
//!   silent gap; [`ChangeLog::since`] answers [`FeedGone`] instead, and
//!   the consumer resyncs from a full snapshot. Fail closed, never
//!   wrong.
//!
//! The log is deliberately a plain in-memory structure with no locking
//! of its own: the serving layer already guards each dataset with a
//! lock, and recovery rebuilds the log from the write-ahead log's
//! replayed records.

use std::collections::VecDeque;

use crate::delta::SkylineDelta;
use crate::point::PointId;

/// The mutation behind one change-log record — enough for a replica to
/// reproduce the primary's exact state transition (insert order is
/// handle assignment, so shipping rows keeps handle spaces identical).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOp {
    /// A row was inserted (and was assigned the next dense handle).
    Insert {
        /// The row's coordinates.
        row: Vec<f64>,
    },
    /// A live point was removed.
    Remove {
        /// The removed point's handle.
        id: PointId,
    },
}

/// One change-log entry: the operation at a version together with the
/// skyline-membership delta it caused. `delta.version` is the record's
/// key; records in a log are consecutive.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    /// The mutation that moved the version.
    pub op: ChangeOp,
    /// The skyline enter/leave sets, carrying the post-apply version.
    pub delta: SkylineDelta,
}

impl ChangeRecord {
    /// The version this record moved the dataset to.
    pub fn version(&self) -> u64 {
        self.delta.version
    }
}

/// A `since` cursor points below the log's retention horizon: records
/// needed to serve it have been compacted away. The consumer must
/// resync from a snapshot at or after `oldest - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedGone {
    /// Oldest version the log can still serve a record *for* (i.e. the
    /// smallest retained `record.version`). Valid cursors are
    /// `>= oldest - 1`.
    pub oldest: u64,
}

/// One answered cursor read: the records after `since` (capped by the
/// caller's limit), the advanced cursor, and the log bounds the
/// consumer needs for lag accounting and resync decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedBatch {
    /// Records with `since < version <= next`, in version order.
    pub records: Vec<ChangeRecord>,
    /// The cursor after consuming this batch (`== since` when empty).
    pub next: u64,
    /// The log's latest version at read time.
    pub latest: u64,
    /// The log's oldest retained record version at read time.
    pub oldest: u64,
}

/// A bounded, dense, in-memory log of [`ChangeRecord`]s.
///
/// Invariant: `records[i].version() == oldest_retained() + i`, and the
/// last record's version is [`ChangeLog::latest`]. Appends must be the
/// next dense version; the front is evicted past `max_records`.
#[derive(Debug)]
pub struct ChangeLog {
    records: VecDeque<ChangeRecord>,
    /// Version of the most recent record ever appended (or the resume
    /// point); the next append must carry `latest + 1`.
    latest: u64,
    /// Retention cap: evicting the front advances the oldest retained
    /// version, exactly like a WAL compaction does across a restart.
    max_records: usize,
}

impl ChangeLog {
    /// An empty log for a fresh dataset at version 0.
    pub fn new(max_records: usize) -> ChangeLog {
        ChangeLog::resume(0, Vec::new(), max_records)
    }

    /// Rebuild a log from recovery: the dataset is at `version`, and
    /// `records` are the (dense, consecutive) records the write-ahead
    /// log still held — ending exactly at `version` when non-empty.
    /// History absorbed into the snapshot by compaction is gone, which
    /// is precisely what the retention horizon reports.
    pub fn resume(version: u64, records: Vec<ChangeRecord>, max_records: usize) -> ChangeLog {
        let max_records = max_records.max(1);
        if let Some(last) = records.last() {
            assert_eq!(
                last.version(),
                version,
                "resume records must end at the resume version"
            );
            debug_assert!(records
                .windows(2)
                .all(|w| w[1].version() == w[0].version() + 1));
        }
        let mut log = ChangeLog {
            records: records.into(),
            latest: version,
            max_records,
        };
        log.evict();
        log
    }

    fn evict(&mut self) {
        while self.records.len() > self.max_records {
            self.records.pop_front();
        }
    }

    /// Latest version the log has seen (the dataset's content version).
    pub fn latest(&self) -> u64 {
        self.latest
    }

    /// Smallest `record.version` still retained. When the log is empty
    /// this is `latest + 1`: no record can be served, and the only
    /// valid cursor is `latest` itself.
    pub fn oldest_retained(&self) -> u64 {
        match self.records.front() {
            Some(first) => first.version(),
            None => self.latest + 1,
        }
    }

    /// Append the record for the next version. Versions are dense by
    /// construction upstream (`StreamingSkyline` bumps +1 per effective
    /// mutation); a non-consecutive append is a logic error.
    pub fn append(&mut self, record: ChangeRecord) {
        assert_eq!(
            record.version(),
            self.latest + 1,
            "change log appends must be dense"
        );
        self.latest = record.version();
        self.records.push_back(record);
        self.evict();
    }

    /// Serve a cursor read: up to `limit` records strictly after
    /// `since`. Fails with [`FeedGone`] when `since` predates the
    /// retention horizon — the consumer's next record is compacted away
    /// and silently skipping it would hand out a wrong skyline.
    pub fn since(&self, since: u64, limit: usize) -> Result<FeedBatch, FeedGone> {
        let oldest = self.oldest_retained();
        if since + 1 < oldest && since < self.latest {
            return Err(FeedGone { oldest });
        }
        let mut records = Vec::new();
        if since < self.latest {
            let start = (since + 1 - oldest) as usize;
            let take = limit.max(1).min(self.records.len().saturating_sub(start));
            records.extend(self.records.iter().skip(start).take(take).cloned());
        }
        let next = records.last().map_or(since, ChangeRecord::version);
        Ok(FeedBatch {
            records,
            next,
            latest: self.latest,
            oldest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(version: u64, entered: &[PointId]) -> ChangeRecord {
        ChangeRecord {
            op: ChangeOp::Insert {
                row: vec![version as f64],
            },
            delta: SkylineDelta::from_events(entered.to_vec(), Vec::new(), version),
        }
    }

    #[test]
    fn dense_appends_and_cursor_reads() {
        let mut log = ChangeLog::new(16);
        assert_eq!(log.latest(), 0);
        assert_eq!(log.oldest_retained(), 1, "empty log serves nothing");
        for v in 1..=5 {
            log.append(rec(v, &[v as PointId]));
        }
        let batch = log.since(0, 100).unwrap();
        assert_eq!(batch.records.len(), 5);
        assert_eq!(batch.next, 5);
        assert_eq!((batch.latest, batch.oldest), (5, 1));
        // Limited read advances the cursor only as far as it returned.
        let batch = log.since(1, 2).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(ChangeRecord::version)
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(batch.next, 3);
        // Caught-up cursor: empty batch, cursor unchanged.
        let batch = log.since(5, 2).unwrap();
        assert!(batch.records.is_empty());
        assert_eq!(batch.next, 5);
        // A future cursor is tolerated (the consumer knows more than
        // us — e.g. it talked to a newer primary incarnation).
        assert!(log.since(9, 2).unwrap().records.is_empty());
    }

    #[test]
    fn retention_cap_advances_the_horizon_and_gones_stale_cursors() {
        let mut log = ChangeLog::new(3);
        for v in 1..=10 {
            log.append(rec(v, &[]));
        }
        assert_eq!(log.latest(), 10);
        assert_eq!(log.oldest_retained(), 8, "only 3 records retained");
        let gone = log.since(0, 100).unwrap_err();
        assert_eq!(gone.oldest, 8);
        assert!(log.since(6, 100).is_err(), "cursor 6 needs version 7: gone");
        // Cursor == oldest-1 is the earliest still servable.
        let batch = log.since(7, 100).unwrap();
        assert_eq!(batch.records.len(), 3);
        assert_eq!(batch.next, 10);
    }

    #[test]
    fn resume_reports_compacted_history_as_gone() {
        // Snapshot at version 7, WAL replayed records 8..=9.
        let log = ChangeLog::resume(9, vec![rec(8, &[]), rec(9, &[])], 100);
        assert_eq!(log.latest(), 9);
        assert_eq!(log.oldest_retained(), 8);
        assert!(log.since(3, 10).is_err(), "pre-snapshot cursor resyncs");
        assert_eq!(log.since(8, 10).unwrap().records.len(), 1);
        // Fully compacted: nothing replayed.
        let log = ChangeLog::resume(7, Vec::new(), 100);
        assert_eq!(log.oldest_retained(), 8);
        assert!(log.since(6, 10).is_err());
        assert!(log.since(7, 10).unwrap().records.is_empty());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_appends_are_rejected() {
        let mut log = ChangeLog::new(4);
        log.append(rec(2, &[]));
    }
}

//! Subspaces as bitmasks (Definitions 3.3 and 3.4 of the paper).
//!
//! A *subspace* of a `d`-dimensional space `D = {1, …, d}` is any subset of
//! its dimensions. The paper's subset-query index and all incomparability
//! lemmas (3.5, 3.6, 4.2, 4.3) reduce to set algebra over subspaces, so we
//! represent them as `u64` bitmasks: bit `i` set means dimension `i`
//! (0-based here; the paper numbers dimensions from 1) is in the subspace.
//! This bounds the supported dimensionality to [`MAX_DIMS`] = 64, well above
//! the paper's largest experiment (24-D).

use std::fmt;

/// Maximum supported dimensionality (bits of the mask word).
pub const MAX_DIMS: usize = 64;

/// A set of dimensions, packed into a `u64` bitmask.
///
/// The empty subspace and the full space are both representable; the paper
/// excludes them from *dominating* subspaces of skyline survivors, which is
/// enforced by the algorithms, not the type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Subspace {
    bits: u64,
}

impl Subspace {
    /// The empty subspace.
    pub const EMPTY: Subspace = Subspace { bits: 0 };

    /// Build a subspace from a raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        Subspace { bits }
    }

    /// The raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The full space `D = {0, …, dims-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `dims > MAX_DIMS`.
    #[inline]
    pub fn full(dims: usize) -> Self {
        assert!(dims <= MAX_DIMS, "dimensionality {dims} exceeds {MAX_DIMS}");
        if dims == MAX_DIMS {
            Subspace { bits: u64::MAX }
        } else {
            Subspace {
                bits: (1u64 << dims) - 1,
            }
        }
    }

    /// Build a subspace from an iterator of dimension indices.
    pub fn from_dims<I: IntoIterator<Item = usize>>(dims: I) -> Self {
        let mut bits = 0u64;
        for d in dims {
            assert!(d < MAX_DIMS, "dimension {d} exceeds {MAX_DIMS}");
            bits |= 1u64 << d;
        }
        Subspace { bits }
    }

    /// A single-dimension subspace.
    #[inline]
    pub fn singleton(dim: usize) -> Self {
        assert!(dim < MAX_DIMS, "dimension {dim} exceeds {MAX_DIMS}");
        Subspace { bits: 1u64 << dim }
    }

    /// Number of dimensions in the subspace (the paper's *subspace size*).
    #[inline]
    pub fn size(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the subspace is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Whether `dim` belongs to the subspace.
    #[inline]
    pub fn contains(self, dim: usize) -> bool {
        dim < MAX_DIMS && self.bits & (1u64 << dim) != 0
    }

    /// Insert a dimension.
    #[inline]
    pub fn insert(&mut self, dim: usize) {
        assert!(dim < MAX_DIMS, "dimension {dim} exceeds {MAX_DIMS}");
        self.bits |= 1u64 << dim;
    }

    /// Remove a dimension.
    #[inline]
    pub fn remove(&mut self, dim: usize) {
        if dim < MAX_DIMS {
            self.bits &= !(1u64 << dim);
        }
    }

    /// Set union (the paper's subspace *merge*, Definition 4.1).
    #[inline]
    #[must_use]
    pub fn union(self, other: Subspace) -> Subspace {
        Subspace {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersection(self, other: Subspace) -> Subspace {
        Subspace {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: Subspace) -> Subspace {
        Subspace {
            bits: self.bits & !other.bits,
        }
    }

    /// Complement with respect to the full `dims`-dimensional space — the
    /// paper's *reversed* subspace `D^¬` used as subset-query key.
    #[inline]
    #[must_use]
    pub fn complement(self, dims: usize) -> Subspace {
        Subspace {
            bits: Subspace::full(dims).bits & !self.bits,
        }
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: Subspace) -> bool {
        self.bits & !other.bits == 0
    }

    /// `self ⊇ other`.
    #[inline]
    pub fn is_superset_of(self, other: Subspace) -> bool {
        other.is_subset_of(self)
    }

    /// `self ⊂ other` (strict).
    #[inline]
    pub fn is_strict_subset_of(self, other: Subspace) -> bool {
        self.bits != other.bits && self.is_subset_of(other)
    }

    /// Whether the two subspaces are incomparable under set inclusion —
    /// the premise of Lemma 3.5 / Lemma 4.2.
    #[inline]
    pub fn is_inclusion_incomparable(self, other: Subspace) -> bool {
        !self.is_subset_of(other) && !other.is_subset_of(self)
    }

    /// Iterate over the dimensions of the subspace in ascending order.
    #[inline]
    pub fn dims(self) -> DimIter {
        DimIter { bits: self.bits }
    }
}

impl fmt::Debug for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subspace{{")?;
        let mut first = true;
        for d in self.dims() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Subspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<usize> for Subspace {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Subspace::from_dims(iter)
    }
}

/// Iterator over the dimensions of a [`Subspace`], ascending.
#[derive(Debug, Clone)]
pub struct DimIter {
    bits: u64,
}

impl Iterator for DimIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let dim = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(dim)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space() {
        assert_eq!(Subspace::full(3).bits(), 0b111);
        assert_eq!(Subspace::full(0), Subspace::EMPTY);
        assert_eq!(Subspace::full(64).bits(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn full_space_too_large_panics() {
        let _ = Subspace::full(65);
    }

    #[test]
    fn from_dims_and_contains() {
        let s = Subspace::from_dims([0, 2, 5]);
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(5));
        assert!(!s.contains(63));
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn insert_remove() {
        let mut s = Subspace::EMPTY;
        s.insert(7);
        assert!(s.contains(7));
        s.remove(7);
        assert!(s.is_empty());
        // Removing an absent or out-of-range dim is a no-op.
        s.remove(63);
        s.remove(7);
        assert!(s.is_empty());
    }

    #[test]
    fn union_is_merge() {
        let a = Subspace::from_dims([0, 1]);
        let b = Subspace::from_dims([1, 3]);
        assert_eq!(a.union(b), Subspace::from_dims([0, 1, 3]));
    }

    #[test]
    fn intersection_difference() {
        let a = Subspace::from_dims([0, 1, 2]);
        let b = Subspace::from_dims([1, 2, 3]);
        assert_eq!(a.intersection(b), Subspace::from_dims([1, 2]));
        assert_eq!(a.difference(b), Subspace::singleton(0));
    }

    #[test]
    fn complement_is_reversed_subspace() {
        let s = Subspace::from_dims([0, 2]);
        assert_eq!(s.complement(4), Subspace::from_dims([1, 3]));
        assert_eq!(Subspace::EMPTY.complement(3), Subspace::full(3));
        assert_eq!(Subspace::full(3).complement(3), Subspace::EMPTY);
    }

    #[test]
    fn complement_is_involutive() {
        let s = Subspace::from_dims([1, 4, 7]);
        assert_eq!(s.complement(8).complement(8), s);
    }

    #[test]
    fn subset_relations() {
        let small = Subspace::from_dims([1]);
        let big = Subspace::from_dims([0, 1, 2]);
        assert!(small.is_subset_of(big));
        assert!(big.is_superset_of(small));
        assert!(small.is_strict_subset_of(big));
        assert!(!big.is_strict_subset_of(big));
        assert!(big.is_subset_of(big));
    }

    #[test]
    fn inclusion_incomparability() {
        let a = Subspace::from_dims([0, 1]);
        let b = Subspace::from_dims([1, 2]);
        assert!(a.is_inclusion_incomparable(b));
        assert!(!a.is_inclusion_incomparable(a));
        assert!(!Subspace::EMPTY.is_inclusion_incomparable(a));
    }

    #[test]
    fn dim_iteration_ascending() {
        let s = Subspace::from_dims([5, 0, 63, 17]);
        let dims: Vec<usize> = s.dims().collect();
        assert_eq!(dims, vec![0, 5, 17, 63]);
        assert_eq!(s.dims().len(), 4);
    }

    #[test]
    fn debug_format() {
        let s = Subspace::from_dims([0, 3]);
        assert_eq!(format!("{s:?}"), "Subspace{0,3}");
        assert_eq!(format!("{s}"), "Subspace{0,3}");
    }

    #[test]
    fn from_iterator() {
        let s: Subspace = [2usize, 4].into_iter().collect();
        assert_eq!(s, Subspace::from_dims([2, 4]));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Subspace::from_dims([3]),
            Subspace::EMPTY,
            Subspace::from_dims([0, 1]),
        ];
        v.sort();
        assert_eq!(v[0], Subspace::EMPTY);
    }
}

//! Incremental skyline maintenance over updating data — the paper's
//! future-work item (3) in Section 7 ("adapting the proposed method to
//! updating data such as data streams"), built on the same subset-query
//! machinery as the batch algorithms.
//!
//! ## How subspaces work without pivots
//!
//! The batch pipeline derives maximum dominating subspaces from *pivot*
//! skyline points because its Merge phase doubles as pruning. For a
//! mutable set no point is guaranteed to stay, so [`StreamingSkyline`]
//! anchors subspaces to a small fixed set of *reference rows* instead
//! (coordinate snapshots, not live points): `D_q = ⋃_r D_{q≺r}`. The
//! filtering lemma only needs monotonicity, which holds for **any**
//! reference set: if `p ⪯ q` then for every reference `r` and dimension
//! `i` with `q[i] < r[i]` also `p[i] ≤ q[i] < r[i]` — hence
//! `D_p ⊇ D_q`. Reference rows are captured from the first few inserts
//! (rebuilding the indexes while they accumulate) and can be re-anchored
//! at any time with [`StreamingSkyline::rebuild_reference`] when the
//! distribution drifts.
//!
//! ## Two subset indexes
//!
//! - the **dominator index** stores skyline points under `D_s` and is
//!   queried with `D_q` for superset subspaces: the only points that can
//!   dominate `q`;
//! - the **eviction index** stores the complemented subspace `D_s^¬`, so
//!   the same superset query run on `D_q^¬` returns exactly the skyline
//!   points with `D_s ⊆ D_q` — the only points a newly inserted `q` can
//!   dominate.
//!
//! ## Deletions
//!
//! Every non-skyline point remembers one live *killer* that dominates it
//! (the classic exclusive-dominance bookkeeping). Deleting a skyline
//! point only re-examines the points it killed: each either finds a new
//! killer through the dominator index or is promoted, with promotion
//! running the same eviction pass as a fresh insert.

use std::collections::HashMap;

use crate::delta::{DeltaEvents, SkylineDelta};
use crate::dominance::{dominates, dominating_subspace};
use crate::error::{Error, Result};
use crate::metrics::Metrics;
use crate::point::{coordinate_sum, PointId};
use crate::subset_index::SubsetIndex;
use crate::subspace::{Subspace, MAX_DIMS};

/// Number of reference rows used to anchor subspaces.
pub const DEFAULT_REFERENCE_SIZE: usize = 16;

#[derive(Debug, Clone, PartialEq)]
enum EntryState {
    /// In the skyline, stored in both indexes under this subspace.
    Skyline(Subspace),
    /// Dominated; `killer` is a live point that dominates it.
    Shadowed { killer: PointId },
    /// Removed.
    Deleted,
}

/// A dynamically maintained skyline with insert and remove.
///
/// Handles ([`PointId`]) are assigned densely at insertion and never
/// reused; deleted slots stay tombstoned. All query results refer to live
/// points only.
#[derive(Debug, Clone)]
pub struct StreamingSkyline {
    dims: usize,
    reference_size: usize,
    reference: Vec<Vec<f64>>,
    rows: Vec<Vec<f64>>,
    state: Vec<EntryState>,
    dominator_index: SubsetIndex,
    evict_index: SubsetIndex,
    /// killer -> points it currently shadows.
    shadowed_by: HashMap<PointId, Vec<PointId>>,
    live: usize,
    skyline_len: usize,
    version: u64,
}

impl StreamingSkyline {
    /// An empty maintained skyline over a `dims`-dimensional space.
    pub fn new(dims: usize) -> Result<Self> {
        Self::with_reference_size(dims, DEFAULT_REFERENCE_SIZE)
    }

    /// As [`StreamingSkyline::new`] with an explicit reference-set size
    /// (larger = finer subspace filtering, more per-insert reference
    /// tests).
    pub fn with_reference_size(dims: usize, reference_size: usize) -> Result<Self> {
        if dims == 0 {
            return Err(Error::ZeroDimensions);
        }
        if dims > MAX_DIMS {
            return Err(Error::TooManyDimensions {
                requested: dims,
                max: MAX_DIMS,
            });
        }
        Ok(StreamingSkyline {
            dims,
            reference_size: reference_size.max(1),
            reference: Vec::new(),
            rows: Vec::new(),
            state: Vec::new(),
            dominator_index: SubsetIndex::new(dims),
            evict_index: SubsetIndex::new(dims),
            shadowed_by: HashMap::new(),
            live: 0,
            skyline_len: 0,
            version: 0,
        })
    }

    /// Dimensionality of the maintained space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live points (skyline and shadowed).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live points remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current skyline cardinality.
    pub fn skyline_len(&self) -> usize {
        self.skyline_len
    }

    /// Content version: starts at 0 and increments on every successful
    /// [`StreamingSkyline::insert`] or [`StreamingSkyline::remove`].
    /// Re-anchoring does not change the live multiset and does not bump
    /// it. Snapshot consumers (e.g. a serving layer keying caches by
    /// dataset state) can use equality of versions as equality of
    /// contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Ids of every live point (skyline and shadowed), ascending.
    pub fn live_ids(&self) -> Vec<PointId> {
        (0..self.state.len() as PointId)
            .filter(|&id| !matches!(self.state[id as usize], EntryState::Deleted))
            .collect()
    }

    /// Materialise the live multiset as `(handles, rows)`: `rows[i]` is
    /// the coordinate vector of live point `handles[i]`, handles
    /// ascending. Row indices of any batch computation over the rows map
    /// back to stable stream handles through `handles`.
    pub fn snapshot_rows(&self) -> (Vec<PointId>, Vec<Vec<f64>>) {
        let ids = self.live_ids();
        let rows = ids
            .iter()
            .map(|&id| self.rows[id as usize].clone())
            .collect();
        (ids, rows)
    }

    /// Tombstone-aware export of every slot, in handle order: `None` for
    /// deleted handles, `Some(row)` for live ones. Together with
    /// [`StreamingSkyline::version`] this is everything a durability
    /// snapshot needs to rebuild the structure with identical handle
    /// assignment (handles are dense and never reused, so the *position*
    /// of each slot — including tombstones — must survive).
    pub fn slot_rows(&self) -> Vec<Option<&[f64]>> {
        self.state
            .iter()
            .enumerate()
            .map(|(id, st)| match st {
                EntryState::Deleted => None,
                _ => Some(self.rows[id].as_slice()),
            })
            .collect()
    }

    /// Rebuild a structure from a [`StreamingSkyline::slot_rows`] export
    /// and its content version, as recorded by a durability snapshot.
    ///
    /// Live rows are re-inserted through the normal classification path;
    /// tombstoned slots are re-created in place so that handle positions
    /// (and therefore the handles of any future inserts) match the
    /// original structure exactly. The version counter is restored to
    /// `version` rather than counting the replayed inserts, so replaying
    /// a write-ahead log on top of the restored structure reproduces the
    /// original version sequence.
    pub fn restore(dims: usize, slots: &[Option<Vec<f64>>], version: u64) -> Result<Self> {
        let mut s = StreamingSkyline::new(dims)?;
        let mut metrics = Metrics::new();
        for slot in slots {
            match slot {
                Some(row) => {
                    s.insert(row, &mut metrics)?;
                }
                None => {
                    s.rows.push(Vec::new());
                    s.state.push(EntryState::Deleted);
                }
            }
        }
        s.version = version;
        Ok(s)
    }

    /// Ids of the current skyline, ascending.
    pub fn skyline(&self) -> Vec<PointId> {
        (0..self.state.len() as PointId)
            .filter(|&id| matches!(self.state[id as usize], EntryState::Skyline(_)))
            .collect()
    }

    /// Whether `id` is live and currently a skyline point.
    pub fn is_skyline(&self, id: PointId) -> bool {
        matches!(self.state.get(id as usize), Some(EntryState::Skyline(_)))
    }

    /// Coordinates of a live point.
    pub fn get(&self, id: PointId) -> Option<&[f64]> {
        match self.state.get(id as usize) {
            Some(EntryState::Skyline(_)) | Some(EntryState::Shadowed { .. }) => {
                Some(&self.rows[id as usize])
            }
            _ => None,
        }
    }

    fn subspace_of(&self, row: &[f64]) -> Subspace {
        self.reference.iter().fold(Subspace::EMPTY, |acc, r| {
            acc.union(dominating_subspace(row, r))
        })
    }

    /// The *dominator witness* of a live point: the one live dominator
    /// recorded for it when it was last classified (`None` for skyline
    /// points, unknown handles, and tombstones).
    ///
    /// Witness invariant: a shadowed point's witness is live and
    /// dominates it, so a point's skyline membership can only change
    /// when its witness is removed — deletion re-examines exactly the
    /// points whose witness was the deleted id, which is what makes
    /// [`StreamingSkyline::remove_delta`] proportional to the change.
    pub fn witness(&self, id: PointId) -> Option<PointId> {
        match self.state.get(id as usize) {
            Some(EntryState::Shadowed { killer }) => Some(*killer),
            _ => None,
        }
    }

    /// Insert a point; returns its handle.
    ///
    /// Cost: one subset-index query plus dominance tests against the
    /// returned candidates (and, for new skyline points, the eviction
    /// candidates).
    pub fn insert(&mut self, row: &[f64], metrics: &mut Metrics) -> Result<PointId> {
        self.insert_delta(row, metrics).map(|(id, _)| id)
    }

    /// As [`StreamingSkyline::insert`], additionally returning the
    /// [`SkylineDelta`] of the mutation: which ids entered the skyline
    /// (at most the new point itself), which skyline ids it evicted,
    /// and the post-insert content version.
    pub fn insert_delta(
        &mut self,
        row: &[f64],
        metrics: &mut Metrics,
    ) -> Result<(PointId, SkylineDelta)> {
        if row.len() != self.dims {
            return Err(Error::RowLength {
                row: self.rows.len(),
                got: row.len(),
                expected: self.dims,
            });
        }
        if let Some(at) = row.iter().position(|v| v.is_nan()) {
            return Err(Error::NotANumber {
                row: self.rows.len(),
                dim: at,
            });
        }
        let id = self.rows.len() as PointId;
        // Canonicalise -0.0 -> +0.0, as Dataset construction does: the
        // two compare equal under the preference order but differ under
        // the total_cmp-based orderings used elsewhere.
        self.rows.push(
            row.iter()
                .map(|&v| if v == 0.0 { 0.0 } else { v })
                .collect(),
        );
        self.state.push(EntryState::Deleted); // placeholder, set below
        self.live += 1;

        // Warm-up: grow the reference set and re-anchor everything
        // *before* classifying — stored and query subspaces must come
        // from the same reference set for the superset filter to be
        // complete. The set is tiny, so the rebuild is cheap and happens
        // only `reference_size` times over the structure's lifetime.
        if self.reference.len() < self.reference_size {
            self.reference.push(row.to_vec());
            self.reanchor(metrics);
        }
        let mut events = DeltaEvents::default();
        self.classify(id, metrics, &mut events);
        self.version += 1;
        Ok((id, events.into_delta(self.version)))
    }

    /// Classify a (new or resurfacing) point against the current skyline
    /// and wire it into the structure, recording skyline-membership
    /// transitions into `events`.
    fn classify(&mut self, id: PointId, metrics: &mut Metrics, events: &mut DeltaEvents) {
        let sub = self.subspace_of(&self.rows[id as usize]);
        // Dominator check: only skyline points with D ⊇ sub can dominate.
        let mut candidates = Vec::new();
        self.dominator_index
            .query_into(sub, &mut candidates, metrics);
        for &s in &candidates {
            metrics.count_dt();
            if dominates(&self.rows[s as usize], &self.rows[id as usize]) {
                self.state[id as usize] = EntryState::Shadowed { killer: s };
                self.shadowed_by.entry(s).or_default().push(id);
                return;
            }
        }

        // New skyline point: evict the skyline points it dominates —
        // only those with D ⊆ sub can be dominated (stored complemented,
        // hence the complemented query).
        let mut victims = Vec::new();
        self.evict_index
            .query_into(sub.complement(self.dims), &mut victims, metrics);
        for &s in &victims {
            metrics.count_dt();
            if dominates(&self.rows[id as usize], &self.rows[s as usize]) {
                self.demote(s, id, events);
            }
        }
        self.state[id as usize] = EntryState::Skyline(sub);
        self.dominator_index.put(id, sub);
        self.evict_index.put(id, sub.complement(self.dims));
        self.skyline_len += 1;
        events.entered.push(id);
    }

    /// Move a skyline point into the shadow of `killer`.
    fn demote(&mut self, s: PointId, killer: PointId, events: &mut DeltaEvents) {
        let EntryState::Skyline(sub) = self.state[s as usize] else {
            unreachable!("eviction candidates are skyline points");
        };
        self.dominator_index.remove(s, sub);
        self.evict_index.remove(s, sub.complement(self.dims));
        self.skyline_len -= 1;
        self.state[s as usize] = EntryState::Shadowed { killer };
        self.shadowed_by.entry(killer).or_default().push(s);
        events.left.push(s);
    }

    /// Remove a live point. Returns `false` if the handle is unknown or
    /// already deleted.
    ///
    /// Deleting a shadowed point is O(1); deleting a skyline point
    /// re-resolves exactly the points it was shadowing.
    pub fn remove(&mut self, id: PointId, metrics: &mut Metrics) -> bool {
        self.remove_delta(id, metrics).is_some()
    }

    /// As [`StreamingSkyline::remove`], additionally returning the
    /// [`SkylineDelta`] of the mutation — `None` when the handle is
    /// unknown or already deleted (no version bump, no delta). Removing
    /// a shadowed point yields an empty delta at the bumped version;
    /// removing a skyline point yields it in `left` plus any orphans it
    /// was witnessing that re-promoted into `entered`.
    pub fn remove_delta(&mut self, id: PointId, metrics: &mut Metrics) -> Option<SkylineDelta> {
        let mut events = DeltaEvents::default();
        let removed = self.remove_inner(id, metrics, &mut events);
        if removed {
            self.version += 1;
            Some(events.into_delta(self.version))
        } else {
            None
        }
    }

    fn remove_inner(
        &mut self,
        id: PointId,
        metrics: &mut Metrics,
        events: &mut DeltaEvents,
    ) -> bool {
        match self.state.get(id as usize).cloned() {
            None | Some(EntryState::Deleted) => false,
            Some(EntryState::Shadowed { killer }) => {
                if let Some(list) = self.shadowed_by.get_mut(&killer) {
                    list.retain(|&q| q != id);
                }
                self.state[id as usize] = EntryState::Deleted;
                self.live -= 1;
                // A shadowed point can still be the registered killer of
                // others (it killed them while it was a skyline point,
                // before being demoted itself). Its own killer dominates
                // them transitively, so re-parenting is enough — no
                // dominance tests needed.
                if let Some(orphans) = self.shadowed_by.remove(&id) {
                    for &q in &orphans {
                        self.state[q as usize] = EntryState::Shadowed { killer };
                    }
                    self.shadowed_by.entry(killer).or_default().extend(orphans);
                }
                true
            }
            Some(EntryState::Skyline(sub)) => {
                self.dominator_index.remove(id, sub);
                self.evict_index.remove(id, sub.complement(self.dims));
                self.skyline_len -= 1;
                self.state[id as usize] = EntryState::Deleted;
                self.live -= 1;
                events.left.push(id);
                self.reresolve_orphans_of(id, metrics, events);
                true
            }
        }
    }

    /// Re-classify every point whose registered killer was `id`, in a
    /// monotone order so dominators resurface before the points they
    /// dominate (not required for correctness — promotion evicts — but
    /// it minimises churn).
    fn reresolve_orphans_of(
        &mut self,
        id: PointId,
        metrics: &mut Metrics,
        events: &mut DeltaEvents,
    ) {
        let mut orphans = self.shadowed_by.remove(&id).unwrap_or_default();
        orphans.sort_by(|&a, &b| {
            coordinate_sum(&self.rows[a as usize])
                .total_cmp(&coordinate_sum(&self.rows[b as usize]))
                .then(a.cmp(&b))
        });
        for q in orphans {
            debug_assert!(matches!(
                self.state[q as usize],
                EntryState::Shadowed { .. }
            ));
            self.classify(q, metrics, events);
        }
    }

    /// Re-anchor the reference set and rebuild both indexes.
    ///
    /// Called automatically during warm-up; call it manually after heavy
    /// distribution drift to restore filtering quality (the current
    /// skyline rows make the best anchors).
    pub fn rebuild_reference(&mut self, metrics: &mut Metrics) {
        let skyline = self.skyline();
        self.reference = skyline
            .iter()
            .take(self.reference_size)
            .map(|&id| self.rows[id as usize].clone())
            .collect();
        self.reanchor(metrics);
    }

    /// Recompute every skyline point's subspace and rebuild the indexes.
    fn reanchor(&mut self, _metrics: &mut Metrics) {
        self.dominator_index = SubsetIndex::new(self.dims);
        self.evict_index = SubsetIndex::new(self.dims);
        for id in 0..self.state.len() {
            if let EntryState::Skyline(_) = self.state[id] {
                let sub = self.subspace_of(&self.rows[id]);
                self.state[id] = EntryState::Skyline(sub);
                self.dominator_index.put(id as PointId, sub);
                self.evict_index
                    .put(id as PointId, sub.complement(self.dims));
            }
        }
    }

    /// Internal consistency check, used by tests: every live point is
    /// either a skyline point not dominated by any live point, or is
    /// shadowed with a live killer that dominates it.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut skyline_count = 0usize;
        let mut live = 0usize;
        for (id, st) in self.state.iter().enumerate() {
            match st {
                EntryState::Deleted => {}
                EntryState::Skyline(sub) => {
                    skyline_count += 1;
                    live += 1;
                    assert_eq!(
                        *sub,
                        self.subspace_of(&self.rows[id]),
                        "stale subspace for {id}"
                    );
                    for (other, st2) in self.state.iter().enumerate() {
                        if id != other && !matches!(st2, EntryState::Deleted) {
                            assert!(
                                !dominates(&self.rows[other], &self.rows[id]),
                                "skyline point {id} is dominated by {other}"
                            );
                        }
                    }
                }
                EntryState::Shadowed { killer } => {
                    live += 1;
                    assert!(
                        !matches!(self.state[*killer as usize], EntryState::Deleted),
                        "point {id} has a dead killer {killer}"
                    );
                    assert!(
                        dominates(&self.rows[*killer as usize], &self.rows[id]),
                        "killer {killer} does not dominate {id}"
                    );
                }
            }
        }
        assert_eq!(skyline_count, self.skyline_len);
        assert_eq!(live, self.live);
        assert_eq!(self.dominator_index.len(), self.skyline_len);
        assert_eq!(self.evict_index.len(), self.skyline_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Metrics {
        Metrics::new()
    }

    #[test]
    fn construction_validates_dims() {
        assert!(StreamingSkyline::new(0).is_err());
        assert!(StreamingSkyline::new(65).is_err());
        assert!(StreamingSkyline::new(64).is_ok());
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut s = StreamingSkyline::new(2).unwrap();
        assert!(s.insert(&[1.0], &mut m()).is_err());
        assert!(s.insert(&[1.0, f64::NAN], &mut m()).is_err());
        assert!(s.insert(&[1.0, 2.0], &mut m()).is_ok());
    }

    #[test]
    fn basic_insert_classification() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[1.0, 5.0], &mut metrics).unwrap();
        let b = s.insert(&[5.0, 1.0], &mut metrics).unwrap();
        let c = s.insert(&[6.0, 2.0], &mut metrics).unwrap(); // dominated by b
        assert_eq!(s.skyline(), vec![a, b]);
        assert!(s.is_skyline(a));
        assert!(!s.is_skyline(c));
        assert_eq!(s.len(), 3);
        assert_eq!(s.skyline_len(), 2);
        s.check_invariants();
    }

    #[test]
    fn insert_evicts_dominated_skyline_points() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[3.0, 3.0], &mut metrics).unwrap();
        let b = s.insert(&[4.0, 2.0], &mut metrics).unwrap();
        assert_eq!(s.skyline(), vec![a, b]);
        let c = s.insert(&[1.0, 1.0], &mut metrics).unwrap(); // dominates both
        assert_eq!(s.skyline(), vec![c]);
        assert_eq!(s.len(), 3);
        s.check_invariants();
    }

    #[test]
    fn duplicates_share_the_skyline() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[2.0, 2.0], &mut metrics).unwrap();
        let b = s.insert(&[2.0, 2.0], &mut metrics).unwrap();
        assert_eq!(s.skyline(), vec![a, b]);
        s.check_invariants();
    }

    #[test]
    fn remove_shadowed_point_is_trivial() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[1.0, 1.0], &mut metrics).unwrap();
        let b = s.insert(&[2.0, 2.0], &mut metrics).unwrap();
        assert!(s.remove(b, &mut metrics));
        assert_eq!(s.skyline(), vec![a]);
        assert_eq!(s.len(), 1);
        assert!(!s.remove(b, &mut metrics), "double delete");
        assert!(s.get(b).is_none());
        s.check_invariants();
    }

    #[test]
    fn removing_a_skyline_point_resurfaces_its_shadow() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[1.0, 1.0], &mut metrics).unwrap();
        let b = s.insert(&[2.0, 2.0], &mut metrics).unwrap(); // shadowed by a
        let c = s.insert(&[3.0, 3.0], &mut metrics).unwrap(); // shadowed by a
        assert_eq!(s.skyline(), vec![a]);
        assert!(s.remove(a, &mut metrics));
        // b resurfaces to the skyline; c is now shadowed by b.
        assert_eq!(s.skyline(), vec![b]);
        assert!(!s.is_skyline(c));
        s.check_invariants();
        assert!(s.remove(b, &mut metrics));
        assert_eq!(s.skyline(), vec![c]);
        s.check_invariants();
    }

    #[test]
    fn resurfacing_points_may_dominate_each_other() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[0.0, 0.0], &mut metrics).unwrap();
        // Both shadowed by a, and x dominates y.
        let x = s.insert(&[1.0, 1.0], &mut metrics).unwrap();
        let y = s.insert(&[2.0, 2.0], &mut metrics).unwrap();
        assert!(s.remove(a, &mut metrics));
        assert_eq!(s.skyline(), vec![x]);
        assert!(!s.is_skyline(y));
        s.check_invariants();
    }

    #[test]
    fn chain_of_deletions() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let ids: Vec<PointId> = (0..10)
            .map(|i| s.insert(&[i as f64, i as f64], &mut metrics).unwrap())
            .collect();
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(s.skyline(), vec![id]);
            assert!(s.remove(id, &mut metrics));
            s.check_invariants();
            assert_eq!(s.len(), 10 - k - 1);
        }
        assert!(s.is_empty());
        assert_eq!(s.skyline_len(), 0);
    }

    #[test]
    fn warmup_reanchoring_keeps_filtering_correct() {
        // More inserts than the reference size: the index must stay
        // consistent across the automatic re-anchors.
        let mut s = StreamingSkyline::with_reference_size(3, 4).unwrap();
        let mut metrics = m();
        let rows: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                [
                    ((i * 7) % 13) as f64,
                    ((i * 11) % 13) as f64,
                    ((i * 5) % 13) as f64,
                ]
            })
            .collect();
        for r in &rows {
            s.insert(r, &mut metrics).unwrap();
            s.check_invariants();
        }
    }

    #[test]
    fn matches_batch_recomputation_under_churn() {
        use crate::dataset::Dataset;
        let mut s = StreamingSkyline::new(3).unwrap();
        let mut metrics = m();
        let mut alive: Vec<(PointId, Vec<f64>)> = Vec::new();
        let mut next = 0u64;
        let mut lcg = || {
            // Deterministic LCG; the streaming structure itself is what
            // is under test.
            next = next
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((next >> 33) % 9) as f64
        };
        for step in 0..300 {
            if step % 5 == 4 && !alive.is_empty() {
                // Delete the oldest live point.
                let (id, _) = alive.remove((step * 7) % alive.len());
                assert!(s.remove(id, &mut metrics));
            } else {
                let row = vec![lcg(), lcg(), lcg()];
                let id = s.insert(&row, &mut metrics).unwrap();
                alive.push((id, row));
            }
            if step % 25 == 0 {
                s.check_invariants();
            }
            // Oracle: recompute the skyline of the alive multiset.
            let rows: Vec<Vec<f64>> = alive.iter().map(|(_, r)| r.clone()).collect();
            if rows.is_empty() {
                assert!(s.skyline().is_empty());
                continue;
            }
            let ds = Dataset::from_rows(&rows).unwrap();
            let mut expected: Vec<PointId> = Vec::new();
            for (i, (id, _)) in alive.iter().enumerate() {
                let mut dominated = false;
                for (j, _) in alive.iter().enumerate() {
                    if i != j && dominates(ds.point(j as PointId), ds.point(i as PointId)) {
                        dominated = true;
                        break;
                    }
                }
                if !dominated {
                    expected.push(*id);
                }
            }
            expected.sort_unstable();
            assert_eq!(s.skyline(), expected, "step {step}");
        }
    }

    #[test]
    fn version_tracks_successful_mutations_only() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        assert_eq!(s.version(), 0);
        let a = s.insert(&[1.0, 2.0], &mut metrics).unwrap();
        let b = s.insert(&[2.0, 1.0], &mut metrics).unwrap();
        assert_eq!(s.version(), 2);
        assert!(s.insert(&[1.0], &mut metrics).is_err(), "bad row");
        assert_eq!(s.version(), 2, "failed insert must not bump");
        s.rebuild_reference(&mut metrics);
        assert_eq!(s.version(), 2, "re-anchoring must not bump");
        assert!(s.remove(a, &mut metrics));
        assert_eq!(s.version(), 3);
        assert!(!s.remove(a, &mut metrics), "double delete");
        assert_eq!(s.version(), 3, "no-op remove must not bump");
        assert_eq!(s.live_ids(), vec![b]);
    }

    #[test]
    fn snapshot_rows_maps_row_indices_to_handles() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[1.0, 5.0], &mut metrics).unwrap();
        let b = s.insert(&[5.0, 1.0], &mut metrics).unwrap();
        let c = s.insert(&[3.0, 3.0], &mut metrics).unwrap();
        assert!(s.remove(b, &mut metrics));
        let (handles, rows) = s.snapshot_rows();
        assert_eq!(handles, vec![a, c]);
        assert_eq!(rows, vec![vec![1.0, 5.0], vec![3.0, 3.0]]);
    }

    #[test]
    fn rebuild_reference_re_anchors_to_the_skyline() {
        let mut s = StreamingSkyline::with_reference_size(2, 4).unwrap();
        let mut metrics = m();
        // Early points far from the final skyline region.
        for i in 0..20 {
            let v = 50.0 + i as f64;
            s.insert(&[v, 100.0 - v], &mut metrics).unwrap();
        }
        // Distribution drifts: much better points arrive.
        for i in 0..20 {
            let v = i as f64;
            s.insert(&[v, 19.0 - v], &mut metrics).unwrap();
        }
        let before = s.skyline();
        s.rebuild_reference(&mut metrics);
        assert_eq!(
            s.skyline(),
            before,
            "re-anchoring must not change the skyline"
        );
        s.check_invariants();
        // And the structure keeps working afterwards.
        s.insert(&[-1.0, -1.0], &mut metrics).unwrap();
        assert_eq!(s.skyline_len(), 1);
        s.check_invariants();
    }

    #[test]
    fn restore_round_trips_slots_version_and_future_handles() {
        let mut s = StreamingSkyline::new(3).unwrap();
        let mut metrics = m();
        for i in 0..40u64 {
            let row = [
                ((i * 37) % 23) as f64,
                ((i * 73) % 19) as f64,
                ((i * 11) % 29) as f64,
            ];
            s.insert(&row, &mut metrics).unwrap();
        }
        for id in [3, 7, 11, 20] {
            assert!(s.remove(id, &mut metrics));
        }
        let slots: Vec<Option<Vec<f64>>> = s
            .slot_rows()
            .into_iter()
            .map(|r| r.map(<[f64]>::to_vec))
            .collect();
        let mut restored = StreamingSkyline::restore(3, &slots, s.version()).unwrap();
        restored.check_invariants();
        assert_eq!(restored.version(), s.version());
        assert_eq!(restored.skyline(), s.skyline());
        assert_eq!(restored.live_ids(), s.live_ids());
        assert_eq!(restored.snapshot_rows(), s.snapshot_rows());
        // Future inserts pick up the same dense handle sequence.
        let a = s.insert(&[1.0, 1.0, 1.0], &mut metrics).unwrap();
        let b = restored.insert(&[1.0, 1.0, 1.0], &mut metrics).unwrap();
        assert_eq!(a, b);
        assert_eq!(restored.version(), s.version());
    }

    #[test]
    fn insert_delta_reports_entries_and_evictions() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let (a, d) = s.insert_delta(&[3.0, 3.0], &mut metrics).unwrap();
        assert_eq!(
            (d.entered.as_slice(), d.left.as_slice()),
            ([a].as_slice(), [].as_slice())
        );
        assert_eq!(d.version, 1);
        let (b, d) = s.insert_delta(&[4.0, 2.0], &mut metrics).unwrap();
        assert_eq!(d.entered, vec![b]);
        // Dominates both: they leave, it enters.
        let (c, d) = s.insert_delta(&[1.0, 1.0], &mut metrics).unwrap();
        assert_eq!(d.entered, vec![c]);
        assert_eq!(d.left, vec![a, b]);
        assert_eq!(d.version, 3);
        // A dominated insert nets to an empty delta at a bumped version.
        let (_, d) = s.insert_delta(&[9.0, 9.0], &mut metrics).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.version, 4);
    }

    #[test]
    fn remove_delta_reports_promotions() {
        let mut s = StreamingSkyline::new(2).unwrap();
        let mut metrics = m();
        let a = s.insert(&[1.0, 1.0], &mut metrics).unwrap();
        let b = s.insert(&[2.0, 2.0], &mut metrics).unwrap(); // witnessed by a
        let c = s.insert(&[3.0, 3.0], &mut metrics).unwrap(); // witnessed by a
        assert_eq!(s.witness(b), Some(a));
        assert_eq!(s.witness(a), None, "skyline points carry no witness");
        // Removing a shadowed point: empty delta, version still moves.
        let d = s.remove_delta(c, &mut metrics).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.version, 4);
        // Removing the witness promotes exactly its orphan.
        let d = s.remove_delta(a, &mut metrics).unwrap();
        assert_eq!(d.entered, vec![b]);
        assert_eq!(d.left, vec![a]);
        assert_eq!(d.version, 5);
        // Unknown/dead handles: no delta, no version bump.
        assert!(s.remove_delta(a, &mut metrics).is_none());
        assert!(s.remove_delta(999, &mut metrics).is_none());
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn delta_stream_patches_a_materialised_skyline() {
        // Apply every delta to an external copy and never read
        // s.skyline() between mutations: the patched copy must track.
        let mut s = StreamingSkyline::new(3).unwrap();
        let mut metrics = m();
        let mut patched: Vec<PointId> = Vec::new();
        let mut live: Vec<PointId> = Vec::new();
        let mut next = 1u64;
        for step in 0..200 {
            next = next
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = next >> 33;
            if step % 4 == 3 && !live.is_empty() {
                let victim = live.remove(r as usize % live.len());
                let d = s.remove_delta(victim, &mut metrics).unwrap();
                assert!(d.apply(&mut patched), "step {step}: remove patch fits");
            } else {
                let row = vec![(r % 7) as f64, ((r / 7) % 7) as f64, ((r / 49) % 7) as f64];
                let (id, d) = s.insert_delta(&row, &mut metrics).unwrap();
                live.push(id);
                assert!(d.apply(&mut patched), "step {step}: insert patch fits");
            }
            assert_eq!(patched, s.skyline(), "step {step}");
        }
    }

    #[test]
    fn subspace_filter_reduces_candidate_volume() {
        // With a frozen reference set, candidate volume through the
        // subset index should be well below skyline size for most tests.
        let mut s = StreamingSkyline::with_reference_size(4, 4).unwrap();
        let mut metrics = m();
        let mut inserted = 0u64;
        for i in 0..400u64 {
            let row = [
                ((i * 37) % 101) as f64,
                ((i * 73) % 97) as f64,
                ((i * 11) % 89) as f64,
                ((i * 53) % 83) as f64,
            ];
            s.insert(&row, &mut metrics).unwrap();
            inserted += 1;
        }
        s.check_invariants();
        let mean_candidates = metrics.candidates_returned as f64 / inserted as f64;
        assert!(
            (mean_candidates as usize) < s.skyline_len(),
            "filtering should beat the full-skyline scan: {mean_candidates:.1} vs {}",
            s.skyline_len()
        );
    }
}
